// Package pftables implements the Process Firewall rule language of paper
// Table 3 — the userspace side that parses pftables command lines,
// validates them, translates symbolic names (SELinux labels, SYSHIGH,
// filenames, NR_* syscall names) into the integer forms the kernel engine
// matches on, and installs the result (paper Section 5.2: "The PF rule
// setup module translates input rules into an enforceable form ... it
// translates filenames into inode numbers and SELinux security labels into
// security IDs for fast matching").
//
// Grammar (Table 3):
//
//	pftables [-t table] [-I|-A|-D] [chain] rule_spec
//	rule_spec : [def_match] [list of match] [target]
//	match     : -m match_mod_name [match_mod_options]
//	target    : -j target_mod_name [target_mod_options]
//	def_match : -s process_label -d object_label
//	          : -i entry_point -o lsm_operation -p program [-f filename]
package pftables

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"pfirewall/internal/ipc"
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// Env supplies the system facilities rule compilation needs.
type Env struct {
	// Policy resolves labels to SIDs and expands SYSHIGH.
	Policy *mac.Policy
	// LookupPath translates a filename in a rule into its inode number;
	// nil disables -f. ok is false for nonexistent paths.
	LookupPath func(path string) (ino uint64, ok bool)
	// Syscalls resolves NR_<name> constants; nil disables them.
	Syscalls map[string]int
}

// Cmd is a parsed pftables command line.
type Cmd struct {
	Table  string // filter (default) or mangle
	Action byte   // 'I' insert, 'A' append, 'D' delete, 'R' replace, 'F' flush
	Chain  string
	Rule   *pf.Rule
	// NewChainName is set for "-N chain" commands.
	NewChainName string
	// RulePos is the 1-based chain position for "-R chain N rule_spec".
	RulePos int
	// Tag is set for "-D chain --tag <src>": remove every rule whose
	// recorded source file equals the tag, however many there are. Churn
	// controllers tag their waves and drain them in one command without
	// rendering rules for matching.
	Tag string
	// Pos is where the command came from (set by ParseAt / InstallAll).
	Pos pf.Pos
}

// Error is a pftables parse or install error carrying the source position
// of the offending line (and, for parse errors, the offending token's
// column). Errors from Parse (no position supplied) report only a column.
type Error struct {
	Pos pf.Pos
	Err error
}

// Error renders the position compiler-style ahead of the message.
func (e *Error) Error() string {
	if e.Pos.IsSet() {
		return fmt.Sprintf("%s: %v", e.Pos, e.Err)
	}
	return e.Err.Error()
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// KeyFor hashes a symbolic STATE key (e.g. 'sig') into the dictionary key
// space; numeric keys are used directly by the parser.
func KeyFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// token is one whitespace-delimited word plus the 1-based rune column of
// its first character, so parse errors can point inside the line.
type token struct {
	text string
	col  int
}

// tokenize splits a command line on whitespace, honoring single quotes.
func tokenize(line string) ([]token, error) {
	var toks []token
	var cur strings.Builder
	inQuote := false
	col, startCol := 0, 0
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, token{text: cur.String(), col: startCol})
			cur.Reset()
		}
	}
	for _, r := range line {
		col++
		switch {
		case r == '\'':
			inQuote = !inQuote
			if cur.Len() == 0 {
				startCol = col
			}
			// Preserve emptiness markers: quotes delimit a token even if empty.
			cur.WriteRune(0)
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			if cur.Len() == 0 {
				startCol = col
			}
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("pftables: unterminated quote")
	}
	flush()
	// Strip the NUL markers inserted for quotes.
	for i := range toks {
		toks[i].text = strings.ReplaceAll(toks[i].text, "\x00", "")
	}
	return toks, nil
}

// builtinChains are always present.
var builtinChains = map[string]bool{
	"input": true, "output": true, "syscallbegin": true, "mangle/input": true,
}

// Parse parses one pftables command line into a Cmd. The rule is not yet
// bound to an engine; use Compile/Install.
func Parse(env *Env, line string) (*Cmd, error) {
	return ParseAt(env, line, pf.Pos{})
}

// ParseAt is Parse with a source position: errors come back as *Error
// pointing at the offending token, and the parsed rule carries pos in its
// Src field so downstream findings can cite the source line.
func ParseAt(env *Env, line string, pos pf.Pos) (*Cmd, error) {
	cmd, errCol, err := parseLine(env, line)
	if err != nil {
		return nil, &Error{Pos: pos.WithCol(errCol), Err: err}
	}
	cmd.Pos = pos
	if cmd.Rule != nil {
		cmd.Rule.Src = pos
	}
	return cmd, nil
}

// parseLine does the parsing proper; errCol is the column of the token the
// parser was positioned at when the error occurred (0 when unknown).
func parseLine(env *Env, line string) (cmd *Cmd, errCol int, err error) {
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "#") {
		return nil, 0, fmt.Errorf("pftables: comment line")
	}
	toks, err := tokenize(line)
	if err != nil {
		return nil, 0, err
	}
	if len(toks) == 0 {
		return nil, 0, fmt.Errorf("pftables: empty command")
	}
	if toks[0].text == "pftables" {
		toks = toks[1:]
	}
	cmd = &Cmd{Table: "filter", Action: 'A', Chain: "input", Rule: &pf.Rule{}}
	var matches []pf.Match
	// Columns of flags whose validity is only known once the whole line has
	// been scanned; the end-of-parse checks cite them instead of column 0.
	rCol, tagCol := 0, 0

	next := func(i int, opt string) (string, error) {
		if i+1 >= len(toks) {
			return "", fmt.Errorf("pftables: %s requires an argument", opt)
		}
		return toks[i+1].text, nil
	}
	texts := func(from int) []string {
		out := make([]string, 0, len(toks)-from)
		for _, tk := range toks[from:] {
			out = append(out, tk.text)
		}
		return out
	}

	i := 0
	for i < len(toks) {
		errCol = toks[i].col
		t := toks[i].text
		switch t {
		case "-t":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			if v != "filter" && v != "mangle" {
				return nil, errCol, fmt.Errorf("pftables: unknown table %q", v)
			}
			cmd.Table = v
			i += 2
		case "-I", "-A", "-D":
			cmd.Action = t[1]
			// Optional chain operand follows.
			if i+1 < len(toks) && !strings.HasPrefix(toks[i+1].text, "-") {
				cmd.Chain = normalizeChain(toks[i+1].text)
				i += 2
			} else {
				i++
			}
		case "-R":
			// Replace-by-position: -R chain N rule_spec (1-based, like
			// iptables -R). The position operand is required.
			cmd.Action = 'R'
			rCol = errCol
			if i+1 < len(toks) && !strings.HasPrefix(toks[i+1].text, "-") {
				cmd.Chain = normalizeChain(toks[i+1].text)
				i += 2
			} else {
				i++
			}
			if i < len(toks) && !strings.HasPrefix(toks[i].text, "-") {
				errCol = toks[i].col
				v, err := parseUint(toks[i].text)
				if err != nil || v == 0 {
					return nil, errCol, fmt.Errorf("pftables: -R: bad rule position %q", toks[i].text)
				}
				cmd.RulePos = int(v)
				i++
			}
		case "-F":
			// Flush: -F [chain]; without a chain every chain is emptied.
			cmd.Action = 'F'
			cmd.Chain = ""
			if i+1 < len(toks) && !strings.HasPrefix(toks[i+1].text, "-") {
				cmd.Chain = normalizeChain(toks[i+1].text)
				i += 2
			} else {
				i++
			}
		case "--tag":
			tagCol = errCol
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			cmd.Tag = v
			i += 2
		case "-N":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			cmd.NewChainName = normalizeChain(v)
			i += 2
		case "-s":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			set, err := parseSIDSet(env, v)
			if err != nil {
				return nil, errCol, err
			}
			cmd.Rule.Subject = set
			i += 2
		case "-d":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			set, err := parseSIDSet(env, v)
			if err != nil {
				return nil, errCol, err
			}
			cmd.Rule.Object = set
			i += 2
		case "-p", "-b": // -b "binary" appears in template T2
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			cmd.Rule.Program = v
			i += 2
		case "-i":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			off, err := parseUint(v)
			if err != nil {
				return nil, errCol, fmt.Errorf("pftables: bad entrypoint %q: %v", v, err)
			}
			cmd.Rule.Entry = off
			cmd.Rule.EntrySet = true
			i += 2
		case "-o":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			var ops pf.OpSet
			for _, name := range strings.Split(v, ",") {
				op, err := pf.ParseOp(name)
				if err != nil {
					return nil, errCol, err
				}
				ops |= pf.NewOpSet(op)
				// Backward compatibility: fifo creation used to be mediated
				// as the generic FILE_CREATE, so rule files written before
				// FIFO_CREATE existed keep covering mkfifo.
				if op == pf.OpFileCreate {
					ops |= pf.NewOpSet(pf.OpFifoCreate)
				}
			}
			cmd.Rule.Ops = ops
			i += 2
		case "--res-id":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			id, err := parseUint(v)
			if err != nil {
				return nil, errCol, fmt.Errorf("pftables: bad --res-id %q", v)
			}
			cmd.Rule.ResID = id
			cmd.Rule.ResIDSet = true
			i += 2
		case "-f":
			v, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			if env.LookupPath == nil {
				return nil, errCol, fmt.Errorf("pftables: -f unsupported without path lookup")
			}
			ino, ok := env.LookupPath(v)
			if !ok {
				return nil, errCol, fmt.Errorf("pftables: -f %s: no such file", v)
			}
			cmd.Rule.ResID = ino
			cmd.Rule.ResIDSet = true
			i += 2
		case "-m":
			name, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			m, n, err := parseMatch(env, name, texts(i+2))
			if err != nil {
				return nil, errCol, err
			}
			matches = append(matches, m)
			i += 2 + n
		case "-j":
			name, err := next(i, t)
			if err != nil {
				return nil, errCol, err
			}
			tg, n, err := parseTarget(env, name, texts(i+2))
			if err != nil {
				return nil, errCol, err
			}
			cmd.Rule.Target = tg
			i += 2 + n
		default:
			return nil, errCol, fmt.Errorf("pftables: unexpected token %q", t)
		}
	}
	cmd.Rule.Matches = matches
	if cmd.Action == 'R' && cmd.RulePos == 0 {
		return nil, rCol, fmt.Errorf("pftables: -R requires a 1-based rule position")
	}
	if cmd.Tag != "" && cmd.Action != 'D' {
		return nil, tagCol, fmt.Errorf("pftables: --tag is only valid with -D")
	}
	needRule := cmd.NewChainName == "" && cmd.Action != 'F' && cmd.Tag == ""
	if needRule && cmd.Rule.Target == nil {
		col := 0
		if len(toks) > 0 {
			col = toks[0].col
		}
		return nil, col, fmt.Errorf("pftables: rule has no target (-j)")
	}
	return cmd, 0, nil
}

// normalizeChain lowercases chain names and collapses the paper's
// "create/input" spelling onto input.
func normalizeChain(name string) string {
	n := strings.ToLower(name)
	if strings.Contains(n, "/") {
		parts := strings.Split(n, "/")
		n = parts[len(parts)-1]
	}
	return n
}

// parseSIDSet handles "label", "~{a|b|c}", "{a|b}", "SYSHIGH", "~{SYSHIGH}".
func parseSIDSet(env *Env, s string) (*pf.SIDSet, error) {
	negate := strings.HasPrefix(s, "~")
	body := strings.TrimPrefix(s, "~")
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	if body == "" {
		return nil, fmt.Errorf("pftables: empty label set")
	}
	var sids []mac.SID
	for _, name := range strings.Split(body, "|") {
		name = strings.TrimSpace(name)
		if name == "SYSHIGH" {
			// The TCB keyword expands to every trusted label at install
			// time (paper Section 5.2).
			sids = append(sids, env.Policy.TrustedSet()...)
			continue
		}
		sids = append(sids, env.Policy.SIDs().SID(mac.Label(name)))
	}
	return pf.NewSIDSet(negate, sids...), nil
}

// parseUint accepts decimal or 0x-prefixed hex.
func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), map[bool]int{true: 16, false: 10}[strings.HasPrefix(s, "0x")], 64)
}

// parseValue handles literals, C_* context references, and NR_* syscall
// numbers.
func parseValue(env *Env, s string) (pf.Value, error) {
	if ref, ok := pf.ParseRef(s); ok {
		return pf.Value{Ref: ref}, nil
	}
	if strings.HasPrefix(s, "NR_") {
		if env.Syscalls == nil {
			return pf.Value{}, fmt.Errorf("pftables: NR_ constants unsupported without syscall table")
		}
		nr, ok := env.Syscalls[strings.TrimPrefix(s, "NR_")]
		if !ok {
			return pf.Value{}, fmt.Errorf("pftables: unknown syscall %q", s)
		}
		return pf.Literal(uint64(nr)), nil
	}
	v, err := parseUint(s)
	if err != nil {
		return pf.Value{}, fmt.Errorf("pftables: bad value %q", s)
	}
	return pf.Literal(v), nil
}

// parseKey accepts hex/decimal keys or symbolic names (hashed).
func parseKey(s string) uint64 {
	if v, err := parseUint(s); err == nil {
		return v
	}
	return KeyFor(s)
}

// parseMatch consumes a match module's options from toks, returning the
// module and the number of tokens consumed.
func parseMatch(env *Env, name string, toks []string) (pf.Match, int, error) {
	switch name {
	case "STATE":
		m := &pf.StateMatch{}
		i := 0
		seenKey, seenCmp := false, false
		for i < len(toks) {
			switch toks[i] {
			case "--key":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: STATE --key needs a value")
				}
				m.Key = parseKey(toks[i+1])
				seenKey = true
				i += 2
			case "--cmp":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: STATE --cmp needs a value")
				}
				v, err := parseValue(env, toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.Cmp = v
				seenCmp = true
				i += 2
			case "--nequal":
				m.Nequal = true
				i++
			case "--equal":
				m.Nequal = false
				i++
			default:
				goto doneState
			}
		}
	doneState:
		if !seenKey || !seenCmp {
			return nil, 0, fmt.Errorf("pftables: STATE match requires --key and --cmp")
		}
		return m, i, nil
	case "COMPARE":
		m := &pf.CompareMatch{}
		i := 0
		seen1, seen2 := false, false
		for i < len(toks) {
			switch toks[i] {
			case "--v1", "--v2":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: COMPARE %s needs a value", toks[i])
				}
				v, err := parseValue(env, toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				if toks[i] == "--v1" {
					m.V1, seen1 = v, true
				} else {
					m.V2, seen2 = v, true
				}
				i += 2
			case "--nequal":
				m.Nequal = true
				i++
			case "--equal":
				m.Nequal = false
				i++
			default:
				goto doneCompare
			}
		}
	doneCompare:
		if !seen1 || !seen2 {
			return nil, 0, fmt.Errorf("pftables: COMPARE requires --v1 and --v2")
		}
		return m, i, nil
	case "SIGNAL_MATCH":
		return &pf.SignalMatch{}, 0, nil
	case "SYSCALL_ARGS":
		m := &pf.SyscallArgsMatch{}
		i := 0
		for i < len(toks) {
			switch toks[i] {
			case "--arg":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: SYSCALL_ARGS --arg needs a value")
				}
				v, err := parseUint(toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.Arg = int(v)
				i += 2
			case "--equal":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: SYSCALL_ARGS --equal needs a value")
				}
				v, err := parseValue(env, toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				if v.Ref != pf.RefLiteral {
					return nil, 0, fmt.Errorf("pftables: SYSCALL_ARGS --equal must be a literal")
				}
				m.Equal = v.Lit
				i += 2
			default:
				goto doneSys
			}
		}
	doneSys:
		return m, i, nil
	case "PEER_CRED":
		m := &pf.PeerCredMatch{}
		i := 0
		seenUID := false
		for i < len(toks) {
			switch toks[i] {
			case "--uid":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: PEER_CRED --uid needs a value")
				}
				v, err := parseValue(env, toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.UID = v
				seenUID = true
				i += 2
			case "--nequal":
				m.Nequal = true
				i++
			case "--equal":
				m.Nequal = false
				i++
			default:
				goto donePeer
			}
		}
	donePeer:
		if !seenUID {
			return nil, 0, fmt.Errorf("pftables: PEER_CRED requires --uid")
		}
		return m, i, nil
	case "SOCK_NS":
		m := &pf.SockNSMatch{}
		i := 0
		for i < len(toks) {
			switch toks[i] {
			case "--ns":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: SOCK_NS --ns needs a value")
				}
				ns, ok := ipc.ParseNS(toks[i+1])
				if !ok {
					return nil, 0, fmt.Errorf("pftables: SOCK_NS: unknown namespace %q", toks[i+1])
				}
				m.NS = ns.String()
				i += 2
			default:
				goto doneNS
			}
		}
	doneNS:
		if m.NS == "" {
			return nil, 0, fmt.Errorf("pftables: SOCK_NS requires --ns")
		}
		return m, i, nil
	case "PORT":
		m := &pf.PortMatch{}
		i := 0
		seen := false
		parsePort := func(s string) (uint16, error) {
			v, err := parseUint(s)
			if err != nil || v > 0xffff {
				return 0, fmt.Errorf("pftables: PORT: bad port %q", s)
			}
			return uint16(v), nil
		}
		for i < len(toks) {
			switch toks[i] {
			case "--port":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: PORT --port needs a value")
				}
				v, err := parsePort(toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.Min, m.Max = v, v
				seen = true
				i += 2
			case "--min":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: PORT --min needs a value")
				}
				v, err := parsePort(toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.Min = v
				seen = true
				i += 2
			case "--max":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: PORT --max needs a value")
				}
				v, err := parsePort(toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				m.Max = v
				seen = true
				i += 2
			default:
				goto donePort
			}
		}
	donePort:
		if !seen {
			return nil, 0, fmt.Errorf("pftables: PORT requires --port or --min/--max")
		}
		return m, i, nil
	case "ADV_ACCESS":
		m := &pf.AdvAccessMatch{Want: true}
		i := 0
		for i < len(toks) {
			switch toks[i] {
			case "--write":
				m.Write = true
				i++
			case "--read":
				m.Write = false
				i++
			case "--is":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: ADV_ACCESS --is needs a value")
				}
				m.Want = toks[i+1] == "true" || toks[i+1] == "1"
				i += 2
			default:
				goto doneAdv
			}
		}
	doneAdv:
		return m, i, nil
	default:
		return nil, 0, fmt.Errorf("pftables: unknown match module %q", name)
	}
}

// parseTarget consumes a target module's options.
func parseTarget(env *Env, name string, toks []string) (pf.Target, int, error) {
	switch name {
	case "DROP":
		return pf.Drop(), 0, nil
	case "ACCEPT":
		return pf.Accept(), 0, nil
	case "RETURN":
		return &pf.ReturnTarget{}, 0, nil
	case "LOG":
		t := &pf.LogTarget{}
		i := 0
		if i+1 < len(toks)+1 && i < len(toks) && toks[i] == "--prefix" {
			if i+1 >= len(toks) {
				return nil, 0, fmt.Errorf("pftables: LOG --prefix needs a value")
			}
			t.Prefix = strings.Trim(toks[i+1], `"`)
			i += 2
		}
		return t, i, nil
	case "STATE":
		t := &pf.StateTarget{}
		i := 0
		seenKey, seenVal := false, false
		for i < len(toks) {
			switch toks[i] {
			case "--set":
				i++
			case "--key":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: STATE --key needs a value")
				}
				t.Key = parseKey(toks[i+1])
				seenKey = true
				i += 2
			case "--value":
				if i+1 >= len(toks) {
					return nil, 0, fmt.Errorf("pftables: STATE --value needs a value")
				}
				v, err := parseValue(env, toks[i+1])
				if err != nil {
					return nil, 0, err
				}
				t.Val = v
				seenVal = true
				i += 2
			default:
				goto doneStateT
			}
		}
	doneStateT:
		if !seenKey || !seenVal {
			return nil, 0, fmt.Errorf("pftables: STATE target requires --key and --value")
		}
		return t, i, nil
	default:
		// Any other name is a jump to a user chain (e.g. SIGNAL_CHAIN).
		if strings.HasPrefix(name, "-") {
			return nil, 0, fmt.Errorf("pftables: bad target %q", name)
		}
		return &pf.JumpTarget{ChainName: normalizeChain(name)}, 0, nil
	}
}

// Install parses line and installs the resulting rule into engine,
// creating referenced user chains on demand. It returns the parsed Cmd.
func Install(env *Env, engine *pf.Engine, line string) (*Cmd, error) {
	return InstallAt(env, engine, line, pf.Pos{})
}

// InstallAt is Install with a source position threaded through to the
// installed rule and to any parse or install error.
func InstallAt(env *Env, engine *pf.Engine, line string, pos pf.Pos) (*Cmd, error) {
	cmd, err := ParseAt(env, line, pos)
	if err != nil {
		return nil, err
	}
	if cmd.NewChainName != "" {
		if err := engine.NewChain(cmd.NewChainName); err != nil {
			return nil, err
		}
		return cmd, nil
	}
	// Mangle-table rules live in a prefixed chain namespace so the engine
	// can run them ahead of the filter table.
	if cmd.Table == "mangle" && cmd.Chain != "" {
		cmd.Chain = "mangle/" + cmd.Chain
	}
	// Auto-create the destination chain and any jump-target chain, so rule
	// files don't need explicit -N lines (matching the paper's listings).
	ensure := func(name string) {
		if name != "" && !builtinChains[name] {
			if _, ok := engine.Chain(name); !ok {
				engine.NewChain(name)
			}
		}
	}
	ensure(cmd.Chain)
	if j, ok := cmd.Rule.Target.(*pf.JumpTarget); ok {
		ensure(j.ChainName)
	}
	switch {
	case cmd.Action == 'I':
		err = engine.Insert(cmd.Chain, cmd.Rule)
	case cmd.Action == 'A':
		err = engine.Append(cmd.Chain, cmd.Rule)
	case cmd.Action == 'D' && cmd.Tag != "":
		err = engine.Transaction(func(tx *pf.Tx) error {
			_, err := tx.RemoveAll(cmd.Chain, func(r *pf.Rule) bool { return r.Src.File == cmd.Tag })
			return err
		})
	case cmd.Action == 'D':
		err = deleteRule(engine, cmd)
	case cmd.Action == 'R':
		err = engine.Transaction(func(tx *pf.Tx) error {
			return tx.ReplaceAt(cmd.Chain, cmd.RulePos-1, cmd.Rule)
		})
	case cmd.Action == 'F':
		err = engine.Transaction(func(tx *pf.Tx) error {
			if cmd.Chain == "" {
				tx.Flush()
				return nil
			}
			return tx.FlushChain(cmd.Chain)
		})
	default:
		err = fmt.Errorf("pftables: unknown action %q", cmd.Action)
	}
	if err != nil {
		if pos.IsSet() {
			return nil, &Error{Pos: pos, Err: err}
		}
		return nil, err
	}
	return cmd, nil
}

// deleteRule removes the first rule in the chain whose rendering matches.
func deleteRule(engine *pf.Engine, cmd *Cmd) error {
	want := cmd.Rule.String(engine.Policy().SIDs())
	if err := engine.Remove(cmd.Chain, func(r *pf.Rule) bool {
		return r.String(engine.Policy().SIDs()) == want
	}); err != nil {
		return fmt.Errorf("pftables: delete: %w", err)
	}
	return nil
}

// Save renders the engine's entire rule base as pftables command lines
// that reproduce it through InstallAll — the pftables-save facility OS
// distributors ship rule packages with.
func Save(engine *pf.Engine) []string {
	var out []string
	tbl := engine.Policy().SIDs()
	for _, name := range engine.Chains() {
		c, _ := engine.Chain(name)
		if len(c.Rules) == 0 {
			continue
		}
		table, chain := "filter", name
		if strings.HasPrefix(name, "mangle/") {
			table, chain = "mangle", strings.TrimPrefix(name, "mangle/")
		}
		if !builtinChains[name] && table == "filter" {
			out = append(out, fmt.Sprintf("pftables -N %s", chain))
		}
	}
	for _, name := range engine.Chains() {
		c, _ := engine.Chain(name)
		table, chain := "filter", name
		if strings.HasPrefix(name, "mangle/") {
			table, chain = "mangle", strings.TrimPrefix(name, "mangle/")
		}
		for _, r := range c.Rules {
			out = append(out, fmt.Sprintf("pftables -t %s -A %s %s", table, chain, r.String(tbl)))
		}
	}
	return out
}

// InstallAll installs every non-empty, non-comment line, returning the
// number of rules installed. Errors carry the 1-based line number of the
// offending line.
func InstallAll(env *Env, engine *pf.Engine, lines []string) (int, error) {
	return InstallAllFrom(env, engine, "", lines)
}

// InstallAllFrom is InstallAll with a source name: each rule's recorded
// position carries src as its file, so provenance spans and analyzer
// findings can name where a generated rule base came from.
func InstallAllFrom(env *Env, engine *pf.Engine, src string, lines []string) (int, error) {
	n := 0
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := InstallAt(env, engine, line, pf.Pos{File: src, Line: i + 1}); err != nil {
			return n, fmt.Errorf("%q: %w", line, err)
		}
		n++
	}
	return n, nil
}

// ApplyAllFrom parses every non-empty, non-comment line and applies the
// whole batch as ONE engine transaction: one publish, one generation bump,
// one dispatch-index derivation. Unlike InstallAll — which publishes per
// line and stops mid-file on error — this is all-or-nothing: on any parse
// or apply error nothing is installed, and the mediation path never
// observes a partially applied batch. A "-F" line followed by rule lines
// is therefore an atomic hitless reload: traffic sees the old ruleset
// until the instant the fully rebuilt one lands.
func ApplyAllFrom(env *Env, engine *pf.Engine, src string, lines []string) (int, error) {
	return ApplyAllGated(env, engine, src, lines, nil)
}

// ApplyAllGated is ApplyAllFrom with a pre-publish gate (see
// pf.Engine.TransactionGated): after the batch is staged, gate inspects the
// would-be chains; a non-nil error vetoes the publish. The policy daemon
// runs pfcheck here so a bad delta can never reach the mediation path.
func ApplyAllGated(env *Env, engine *pf.Engine, src string, lines []string, gate func(chains map[string]*pf.Chain) error) (int, error) {
	cmds := make([]*Cmd, 0, len(lines))
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, err := ParseAt(env, line, pf.Pos{File: src, Line: i + 1})
		if err != nil {
			return 0, fmt.Errorf("%q: %w", line, err)
		}
		cmds = append(cmds, cmd)
	}
	n := 0
	err := engine.TransactionGated(func(tx *pf.Tx) error {
		for _, cmd := range cmds {
			if err := applyCmd(tx, engine, cmd); err != nil {
				if cmd.Pos.IsSet() {
					return &Error{Pos: cmd.Pos, Err: err}
				}
				return err
			}
			n++
		}
		return nil
	}, gate)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// applyCmd applies one parsed command to an open transaction, mirroring
// InstallAt's per-action dispatch (including chain auto-creation).
func applyCmd(tx *pf.Tx, engine *pf.Engine, cmd *Cmd) error {
	if cmd.NewChainName != "" {
		return tx.NewChain(cmd.NewChainName)
	}
	chain := cmd.Chain
	if cmd.Table == "mangle" && chain != "" {
		chain = "mangle/" + chain
	}
	ensure := func(name string) error {
		if name == "" || builtinChains[name] {
			return nil
		}
		if _, ok := tx.Chain(name); !ok {
			return tx.NewChain(name)
		}
		return nil
	}
	if err := ensure(chain); err != nil {
		return err
	}
	if j, ok := cmd.Rule.Target.(*pf.JumpTarget); ok {
		if err := ensure(j.ChainName); err != nil {
			return err
		}
	}
	switch {
	case cmd.Action == 'I':
		return tx.Insert(chain, cmd.Rule)
	case cmd.Action == 'A':
		return tx.Append(chain, cmd.Rule)
	case cmd.Action == 'D' && cmd.Tag != "":
		_, err := tx.RemoveAll(chain, func(r *pf.Rule) bool { return r.Src.File == cmd.Tag })
		return err
	case cmd.Action == 'D':
		want := cmd.Rule.String(engine.Policy().SIDs())
		return tx.Remove(chain, func(r *pf.Rule) bool {
			return r.String(engine.Policy().SIDs()) == want
		})
	case cmd.Action == 'R':
		return tx.ReplaceAt(chain, cmd.RulePos-1, cmd.Rule)
	case cmd.Action == 'F':
		if chain == "" {
			tx.Flush()
			return nil
		}
		return tx.FlushChain(chain)
	}
	return fmt.Errorf("pftables: unknown action %q", cmd.Action)
}
