package pftables

import (
	"strings"
	"testing"
	"testing/quick"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

func testEnv() *Env {
	pol := mac.NewPolicy(mac.NewSIDTable())
	pol.MarkTrusted("httpd_t", "lib_t", "textrel_shlib_t", "httpd_modules_t", "shadow_t")
	pol.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermWrite)
	return &Env{
		Policy: pol,
		LookupPath: func(p string) (uint64, bool) {
			if p == "/etc/passwd" {
				return 111, true
			}
			return 0, false
		},
		Syscalls: map[string]int{"sigreturn": 15, "open": 2},
	}
}

// paperRules are the rules of Table 5 verbatim (R1–R12), as this library
// accepts them.
var paperRules = []string{
	`pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH -d ~{lib_t|textrel_shlib_t|httpd_modules_t} -o FILE_OPEN -j DROP`,
	`pftables -p /usr/bin/python2.7 -i 0x34f05 -s SYSHIGH -d ~{lib_t|usr_t} -o FILE_OPEN -j DROP`,
	`pftables -p /lib/libdbus-1.so.3 -i 0x39231 -s SYSHIGH -d ~{system_dbusd_var_run_t} -o UNIX_STREAM_SOCKET_CONNECT -j DROP`,
	`pftables -p /usr/bin/php5 -i 0x27ad2c -s SYSHIGH -d ~{httpd_user_script_exec_t} -o FILE_OPEN -j DROP`,
	`pftables -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO`,
	`pftables -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP`,
	`pftables -i 0x5d7e -p /usr/bin/java -d ~{SYSHIGH} -o FILE_OPEN -j DROP`,
	`pftables -i 0x2d637 -p /usr/bin/apache2 -o LINK_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`,
	`pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN`,
	`pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP`,
	`pftables -I signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1`,
	`pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0`,
}

func TestParsePaperRuleSet(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	n, err := InstallAll(env, engine, paperRules)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(paperRules) {
		t.Errorf("installed %d rules, want %d", n, len(paperRules))
	}
	if engine.RuleCount() != len(paperRules) {
		t.Errorf("engine holds %d rules, want %d", engine.RuleCount(), len(paperRules))
	}
	if _, ok := engine.Chain("signal_chain"); !ok {
		t.Error("signal_chain should be auto-created")
	}
}

func TestParseTable3Example(t *testing.T) {
	// "Disallow following links in temp filesystems."
	env := testEnv()
	cmd, err := Parse(env, `pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Table != "filter" || cmd.Chain != "input" {
		t.Errorf("table=%q chain=%q", cmd.Table, cmd.Chain)
	}
	r := cmd.Rule
	if !r.Ops.Has(pf.OpLnkFileRead) || r.Ops.Has(pf.OpFileOpen) {
		t.Error("op set wrong")
	}
	tmp, _ := env.Policy.SIDs().Lookup("tmp_t")
	if !r.Object.Contains(tmp) {
		t.Error("object set must contain tmp_t")
	}
	if r.Target.TargetName() != "DROP" {
		t.Error("target should be DROP")
	}
}

func TestSyshighExpansion(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -s SYSHIGH -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	httpd, _ := env.Policy.SIDs().Lookup("httpd_t")
	if !cmd.Rule.Subject.Contains(httpd) {
		t.Error("SYSHIGH must include httpd_t")
	}
	user := env.Policy.SIDs().SID("user_t")
	if cmd.Rule.Subject.Contains(user) {
		t.Error("SYSHIGH must not include user_t")
	}
	// Negated form: ~{SYSHIGH} matches exactly the complement.
	cmd, err = Parse(env, `pftables -d ~{SYSHIGH} -o FILE_OPEN -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Rule.Object.Contains(httpd) {
		t.Error("~{SYSHIGH} must exclude trusted labels")
	}
	if !cmd.Rule.Object.Contains(user) {
		t.Error("~{SYSHIGH} must include untrusted labels")
	}
}

func TestEntrypointParsing(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -p /lib/ld-2.15.so -i 0x596b -o FILE_OPEN -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Rule.EntrySet || cmd.Rule.Entry != 0x596b || cmd.Rule.Program != "/lib/ld-2.15.so" {
		t.Errorf("rule = %+v", cmd.Rule)
	}
}

func TestStateModules(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO`)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := cmd.Rule.Target.(*pf.StateTarget)
	if !ok {
		t.Fatalf("target = %T", cmd.Rule.Target)
	}
	if st.Key != 0xbeef || st.Val.Ref != pf.RefIno {
		t.Errorf("state target = %+v", st)
	}

	cmd, err = Parse(env, `pftables -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := cmd.Rule.Matches[0].(*pf.StateMatch)
	if !ok || !sm.Nequal || sm.Key != 0xbeef || sm.Cmp.Ref != pf.RefIno {
		t.Errorf("state match = %+v", cmd.Rule.Matches[0])
	}
}

func TestSymbolicStateKeysConsistent(t *testing.T) {
	env := testEnv()
	c1, err := Parse(env, `pftables -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(env, `pftables -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1`)
	if err != nil {
		t.Fatal(err)
	}
	key1 := c1.Rule.Matches[1].(*pf.StateMatch).Key
	key2 := c2.Rule.Target.(*pf.StateTarget).Key
	if key1 != key2 {
		t.Errorf("symbolic key hashed inconsistently: %#x vs %#x", key1, key2)
	}
	if key1 != KeyFor("sig") {
		t.Error("KeyFor mismatch")
	}
}

func TestNRSyscallConstants(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	m := cmd.Rule.Matches[0].(*pf.SyscallArgsMatch)
	if m.Arg != 0 || m.Equal != 15 {
		t.Errorf("match = %+v", m)
	}
	if _, err := Parse(env, `pftables -m SYSCALL_ARGS --arg 0 --equal NR_bogus -j DROP`); err == nil {
		t.Error("unknown NR_ name should fail")
	}
}

func TestCompareParsing(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -o LINK_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	m := cmd.Rule.Matches[0].(*pf.CompareMatch)
	if m.V1.Ref != pf.RefDACOwner || m.V2.Ref != pf.RefTgtDACOwner || !m.Nequal {
		t.Errorf("compare = %+v", m)
	}
}

func TestFileLookup(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -f /etc/passwd -o FILE_OPEN -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Rule.ResIDSet || cmd.Rule.ResID != 111 {
		t.Errorf("rule = %+v", cmd.Rule)
	}
	if _, err := Parse(env, `pftables -f /no/such -j DROP`); err == nil {
		t.Error("missing file should fail")
	}
}

func TestChainNormalization(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -I create/input -o FILE_CREATE -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Chain != "input" {
		t.Errorf("chain = %q, want input", cmd.Chain)
	}
	cmd, err = Parse(env, `pftables -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN`)
	if err != nil {
		t.Fatal(err)
	}
	j := cmd.Rule.Target.(*pf.JumpTarget)
	if j.ChainName != "signal_chain" {
		t.Errorf("jump chain = %q", j.ChainName)
	}
}

func TestDeleteRule(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	line := `pftables -o LNK_FILE_READ -d tmp_t -j DROP`
	if _, err := Install(env, engine, line); err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 1 {
		t.Fatal("install failed")
	}
	if _, err := Install(env, engine, `pftables -D input -o LNK_FILE_READ -d tmp_t -j DROP`); err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 0 {
		t.Error("delete failed")
	}
	if _, err := Install(env, engine, `pftables -D input -o FILE_OPEN -j DROP`); err == nil {
		t.Error("deleting a nonexistent rule should fail")
	}
}

func TestParseErrors(t *testing.T) {
	env := testEnv()
	bad := []string{
		``,
		`pftables`,
		`pftables -o NOT_AN_OP -j DROP`,
		`pftables -o FILE_OPEN`,                  // no target
		`pftables -t bogus -o FILE_OPEN -j DROP`, // bad table
		`pftables -i zzz -p /x -j DROP`,          // bad entrypoint
		`pftables -m NOSUCH -j DROP`,             // unknown match
		`pftables -m STATE --key 1 -j DROP`,      // STATE missing --cmp
		`pftables -m COMPARE --v1 C_INO -j DROP`,
		`pftables -s {} -j DROP`,
		`pftables -j`,
		`pftables --weird -j DROP`,
		`pftables -o FILE_OPEN -j DROP extra`,
	}
	for _, line := range bad {
		if _, err := Parse(env, line); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

// TestParseErrorColumns pins the 1-based columns cited by errors that only
// surface once the whole line has been scanned; they used to report col 0.
func TestParseErrorColumns(t *testing.T) {
	env := testEnv()
	cases := []struct {
		line    string
		col     int
		wantErr string
	}{
		{`pftables -R input -j DROP`, 10, "-R requires a 1-based rule position"},
		{`pftables -t filter -R input -j DROP`, 20, "-R requires a 1-based rule position"},
		{`pftables -A input --tag web -j DROP`, 19, "--tag is only valid with -D"},
		{`pftables --tag web -j DROP`, 10, "--tag is only valid with -D"},
		{`pftables -A input -o FILE_OPEN`, 10, "rule has no target"},
		{`pftables -R input 0 -j DROP`, 19, "bad rule position"},
	}
	for _, tc := range cases {
		_, err := ParseAt(env, tc.line, pf.Pos{File: "t.pft", Line: 1})
		if err == nil {
			t.Errorf("ParseAt(%q) should fail", tc.line)
			continue
		}
		perr, ok := err.(*Error)
		if !ok {
			t.Errorf("ParseAt(%q) error type %T, want *Error", tc.line, err)
			continue
		}
		if !strings.Contains(perr.Error(), tc.wantErr) {
			t.Errorf("ParseAt(%q) err = %v, want substring %q", tc.line, perr, tc.wantErr)
		}
		if perr.Pos.Col != tc.col {
			t.Errorf("ParseAt(%q) col = %d, want %d", tc.line, perr.Pos.Col, tc.col)
		}
	}
}

func TestInstallAllSkipsComments(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	lines := []string{
		"# Load only trusted libraries",
		"",
		`pftables -o FILE_OPEN -d ~{lib_t} -j DROP`,
	}
	n, err := InstallAll(env, engine, lines)
	if err != nil || n != 1 {
		t.Errorf("InstallAll = %d, %v", n, err)
	}
}

func TestInstallAllReportsBadLine(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	_, err := InstallAll(env, engine, []string{`pftables -o BAD -j DROP`})
	if err == nil || !strings.Contains(err.Error(), "BAD") {
		t.Errorf("err = %v", err)
	}
}

func TestNewChainCommand(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, `pftables -N my_chain`); err != nil {
		t.Fatal(err)
	}
	if _, ok := engine.Chain("my_chain"); !ok {
		t.Error("-N did not create the chain")
	}
}

func TestTokenizeQuotes(t *testing.T) {
	toks, err := tokenize(`-m STATE --key 'my key' --cmp 1`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.text == "my key" {
			found = true
		}
	}
	if !found {
		t.Errorf("tokens = %+v", toks)
	}
	if _, err := tokenize(`--key 'unterminated`); err == nil {
		t.Error("unterminated quote should fail")
	}
}

func TestEndToEndR1BlocksUntrustedLibrary(t *testing.T) {
	// Full path: parse R1, install, and filter a simulated ld.so open.
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, paperRules[0]); err != nil {
		t.Fatal(err)
	}
	// Reuse the pf test doubles via a minimal local process.
	proc := newTestProc(env.Policy, "httpd_t", "/usr/bin/apache2")
	m := proc.as.Map("/lib/ld-2.15.so", 0)
	proc.stack.Call(m.Base + 0x10)
	proc.stack.SetPC(m.Base + 0x596b)

	tmpSID := env.Policy.SIDs().SID("tmp_t")
	libSID := env.Policy.SIDs().SID("lib_t")
	if v := engine.Filter(&pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: testRes{sid: tmpSID, id: 5}}); v != pf.VerdictDrop {
		t.Error("R1 should block loading a library from /tmp")
	}
	if v := engine.Filter(&pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: testRes{sid: libSID, id: 6}}); v != pf.VerdictAccept {
		t.Error("R1 should allow lib_t libraries")
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Robustness: arbitrary input must produce an error, never a panic —
	// pftables validates rules pushed in from userspace (paper Section 5).
	env := testEnv()
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(env, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Targeted nasties assembled from valid fragments.
	nasty := []string{
		"pftables -s ~{} -j DROP",
		"pftables -i 0xffffffffffffffff -p /x -j DROP",
		"pftables -m STATE --key --cmp -j DROP",
		"pftables -j STATE --set --key",
		"pftables -o FILE_OPEN,FILE_OPEN,FILE_OPEN -j RETURN",
		"pftables -I '' -j DROP",
		"pftables -m COMPARE --v1 C_INO --v2 --nequal -j DROP",
		"-j DROP -j DROP",
	}
	for _, line := range nasty {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", line, r)
				}
			}()
			Parse(env, line)
		}()
	}
}

func TestParseReturnTarget(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -o FILE_OPEN -j RETURN`)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Rule.Target.TargetName() != "RETURN" {
		t.Errorf("target = %q", cmd.Rule.Target.TargetName())
	}
}

func TestMangleTableInstall(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, `pftables -t mangle -I input -o FILE_OPEN -j STATE --set --key 0x9 --value 1`); err != nil {
		t.Fatal(err)
	}
	c, ok := engine.Chain("mangle/input")
	if !ok || len(c.Rules) != 1 {
		t.Fatalf("mangle/input chain: ok=%v rules=%d", ok, len(c.Rules))
	}
	// Filter-table input must be untouched.
	in, _ := engine.Chain("input")
	if len(in.Rules) != 0 {
		t.Error("filter input should be empty")
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	lines := append([]string{}, paperRules...)
	lines = append(lines,
		`pftables -t mangle -I input -o FILE_OPEN -j STATE --set --key 0x9 --value 1`,
		`pftables -I input -j LOG --prefix "audit"`,
		`pftables --res-id 42 -o FILE_OPEN -j DROP`,
		`pftables -o FILE_OPEN -j RETURN`,
	)
	if _, err := InstallAll(env, engine, lines); err != nil {
		t.Fatal(err)
	}

	saved := Save(engine)
	engine2 := pf.New(env.Policy, pf.Optimized())
	if _, err := InstallAll(env, engine2, saved); err != nil {
		t.Fatalf("restore: %v\nsaved:\n%s", err, strings.Join(saved, "\n"))
	}
	if engine2.RuleCount() != engine.RuleCount() {
		t.Fatalf("restored %d rules, want %d", engine2.RuleCount(), engine.RuleCount())
	}
	// Fixed point: saving the restored engine yields identical lines.
	saved2 := Save(engine2)
	if len(saved) != len(saved2) {
		t.Fatalf("save lengths differ: %d vs %d", len(saved), len(saved2))
	}
	for i := range saved {
		if saved[i] != saved2[i] {
			t.Errorf("line %d differs:\n%s\n%s", i, saved[i], saved2[i])
		}
	}
}
