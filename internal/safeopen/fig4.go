package safeopen

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// This file is the Figure 4 harness: the latency of each open variant as a
// function of pathname length n (the paper plots n = 1, 4, 7; the average
// path length on their system was 2.3).

// Variant is one line of Figure 4.
type Variant struct {
	Name string
	// NeedsPF marks the firewall-assisted variant.
	NeedsPF bool
	Open    func(p *kernel.Proc, path string) (int, error)
}

// Variants returns the six Figure 4 lines in paper order.
func Variants() []Variant {
	return []Variant{
		{Name: "open", Open: Open},
		{Name: "open_nfflag", Open: OpenNoFollow},
		{Name: "open_nolink", Open: OpenNoLink},
		{Name: "open_race", Open: OpenRace},
		{Name: "safe_open", Open: SafeOpen},
		{Name: "safe_open_PF", NeedsPF: true, Open: SafeOpenPF},
	}
}

// PaperPathLens are the path lengths Figure 4 plots.
var PaperPathLens = []int{1, 4, 7}

// Figure4World builds a world containing a target file at path depth n
// and returns the victim process and the path. withPF installs the
// safe_open-equivalent rules.
func Figure4World(n int, withPF bool) (*programs.World, *kernel.Proc, string) {
	var w *programs.World
	if withPF {
		cfg := pf.Optimized()
		w = programs.NewWorld(programs.WorldOpts{PF: &cfg})
		if _, err := w.InstallRules(SafeOpenPFRules()); err != nil {
			panic(err)
		}
	} else {
		w = programs.NewWorld(programs.WorldOpts{})
	}
	// Build /p1/p2/.../target with n components total.
	path := ""
	for i := 1; i < n; i++ {
		path += fmt.Sprintf("/p%d", i)
		w.K.FS.MustPath(path)
	}
	path += "/target"
	dir := w.K.FS.MustPath(strings.TrimSuffix(path, "/target"))
	if path == "/target" {
		dir = w.K.FS.Root()
	}
	if _, err := w.K.FS.CreateAt(dir, "target", path, vfs.CreateOpts{Mode: 0o644}); err != nil {
		panic(err)
	}
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	return w, p, path
}

// Cell is one (variant, n) measurement.
type Cell struct {
	Variant string
	PathLen int
	NsPerOp float64
}

// Run measures every variant at every path length with iters iterations.
func Run(iters int) []Cell {
	var out []Cell
	for _, n := range PaperPathLens {
		for _, v := range Variants() {
			out = append(out, RunCell(v, n, iters))
		}
	}
	return out
}

// RunCell measures one cell.
func RunCell(v Variant, n, iters int) Cell {
	_, p, path := Figure4World(n, v.NeedsPF)
	// Warm up, then isolate from earlier cells' garbage.
	for i := 0; i < iters/10+1; i++ {
		fd, err := v.Open(p, path)
		if err != nil {
			panic(fmt.Sprintf("fig4 %s n=%d: %v", v.Name, n, err))
		}
		p.Close(fd)
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < iters; i++ {
		fd, _ := v.Open(p, path)
		p.Close(fd)
	}
	elapsed := time.Since(start)
	return Cell{Variant: v.Name, PathLen: n, NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters)}
}

// Format renders the cells grouped by path length, with overhead relative
// to the bare open, mirroring the paper's bar chart.
func Format(cells []Cell) string {
	base := map[int]float64{}
	for _, c := range cells {
		if c.Variant == "open" {
			base[c.PathLen] = c.NsPerOp
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "variant")
	for _, n := range PaperPathLens {
		fmt.Fprintf(&b, "n=%-18d", n)
	}
	b.WriteString("\n")
	for _, v := range Variants() {
		fmt.Fprintf(&b, "%-14s", v.Name)
		for _, n := range PaperPathLens {
			for _, c := range cells {
				if c.Variant == v.Name && c.PathLen == n {
					over := 0.0
					if base[n] > 0 {
						over = (c.NsPerOp - base[n]) / base[n] * 100
					}
					fmt.Fprintf(&b, "%-20s", fmt.Sprintf("%.0fns (%+.0f%%)", c.NsPerOp, over))
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
