// Package safeopen implements the program-side link-following defenses the
// paper's Figure 4 benchmarks against each other — the ladder of
// increasingly thorough (and increasingly expensive) open() wrappers from
// Section 2.1:
//
//	Open          the bare open, no checks
//	OpenNoFollow  open with O_NOFOLLOW (non-portable; breaks legitimate links)
//	OpenNoLink    lstat-then-open (Figure 1a lines 3–6; racy)
//	OpenRace      adds the fstat and second-lstat comparisons (lines 7–14),
//	              closing the classic race and the cryogenic-sleep variant
//	SafeOpen      Chari et al.'s per-component discipline: at least four
//	              extra system calls per pathname component
//	SafeOpenPF    the bare open again, with the equivalent checks expressed
//	              as Process Firewall rules (SafeOpenPFRules)
//
// The package exists to reproduce the paper's performance claim: moving
// these checks into the firewall eliminates both the race windows and the
// per-component system-call overhead.
package safeopen

import (
	"errors"
	"strings"

	"pfirewall/internal/kernel"
	"pfirewall/internal/vfs"
)

// Errors reported by the checking variants.
var (
	// ErrIsSymlink means a no-link policy found a symbolic link.
	ErrIsSymlink = errors.New("safeopen: file is a symbolic link")
	// ErrRace means the check and use observed different files.
	ErrRace = errors.New("safeopen: race detected")
	// ErrOwnerMismatch means a symlink points at another user's file.
	ErrOwnerMismatch = errors.New("safeopen: symlink owner mismatch")
)

// Open is the baseline: a single open system call.
func Open(p *kernel.Proc, path string) (int, error) {
	return p.Open(path, kernel.O_RDONLY, 0)
}

// OpenNoFollow refuses to follow a symlink in the final component, like
// open(2) with O_NOFOLLOW: effective, but non-portable and unable to
// support legitimate symlink uses (and it does not protect intermediate
// components).
func OpenNoFollow(p *kernel.Proc, path string) (int, error) {
	return p.Open(path, kernel.O_RDONLY|kernel.O_NOFOLLOW, 0)
}

// OpenNoLink is Figure 1(a) lines 3–6: lstat, reject links, then open.
// The window between the two calls is the TOCTTOU race.
func OpenNoLink(p *kernel.Proc, path string) (int, error) {
	st, err := p.Lstat(path)
	if err != nil {
		return -1, err
	}
	if st.Type == vfs.TypeSymlink {
		return -1, ErrIsSymlink
	}
	return p.Open(path, kernel.O_RDONLY, 0)
}

// OpenRace is the full Figure 1(a): lstat, open, fstat-compare (classic
// race), lstat-compare again (cryogenic sleep — inode numbers cannot
// recycle while the file is held open).
func OpenRace(p *kernel.Proc, path string) (int, error) {
	lst, err := p.Lstat(path)
	if err != nil {
		return -1, err
	}
	if lst.Type == vfs.TypeSymlink {
		return -1, ErrIsSymlink
	}
	fd, err := p.Open(path, kernel.O_RDONLY, 0)
	if err != nil {
		return -1, err
	}
	fst, err := p.Fstat(fd)
	if err != nil {
		p.Close(fd)
		return -1, err
	}
	if fst.Dev != lst.Dev || fst.Ino != lst.Ino {
		p.Close(fd)
		return -1, ErrRace
	}
	lst2, err := p.Lstat(path)
	if err != nil {
		p.Close(fd)
		return -1, err
	}
	if lst2.Dev != fst.Dev || lst2.Ino != fst.Ino {
		p.Close(fd)
		return -1, ErrRace // cryogenic sleep detected
	}
	return fd, nil
}

// SafeOpen applies Chari et al.'s per-component discipline: every prefix
// of the path is lstat'ed; symlinks are followed only when the link and
// its target share an owner (an adversary may redirect within their own
// files but not into a victim's); and the final open is double-checked
// with fstat and a second per-component pass. This costs at least four
// additional system calls per component — the overhead Figure 4 plots.
func SafeOpen(p *kernel.Proc, path string) (int, error) {
	check := func() (vfs.Stat, error) {
		var last vfs.Stat
		prefix := ""
		for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
			prefix += "/" + comp
			lst, err := p.Lstat(prefix)
			if err != nil {
				return vfs.Stat{}, err
			}
			// Validate the resolved object for every component, not just
			// symlinks: Chari et al.'s discipline stats both the name and
			// what it resolves to, which is where the ≥4-syscalls-per-
			// component cost comes from.
			tgt, err := p.Stat(prefix)
			if err != nil {
				return vfs.Stat{}, err
			}
			if lst.Type == vfs.TypeSymlink && tgt.UID != lst.UID {
				return vfs.Stat{}, ErrOwnerMismatch
			}
			last = lst
		}
		return last, nil
	}

	if _, err := check(); err != nil {
		return -1, err
	}
	fd, err := p.Open(path, kernel.O_RDONLY, 0)
	if err != nil {
		return -1, err
	}
	fst, err := p.Fstat(fd)
	if err != nil {
		p.Close(fd)
		return -1, err
	}
	// Re-validate every component now that the object is pinned open.
	last, err := check()
	if err != nil {
		p.Close(fd)
		return -1, err
	}
	if last.Type != vfs.TypeSymlink && (last.Ino != fst.Ino || last.Dev != fst.Dev) {
		p.Close(fd)
		return -1, ErrRace
	}
	return fd, nil
}

// SafeOpenPF is the firewall-assisted equivalent: a single open system
// call, with SafeOpenPFRules installed so the kernel enforces the same
// invariants atomically during pathname resolution — no extra syscalls,
// no race window (paper Section 6.2, safe_open_PF).
func SafeOpenPF(p *kernel.Proc, path string) (int, error) {
	return p.Open(path, kernel.O_RDONLY, 0)
}

// SafeOpenPFRules returns the pftables rules that make SafeOpenPF
// equivalent to SafeOpen: drop any symlink traversal where the link's
// owner differs from its target's owner. Resolution is atomic inside the
// kernel, so no TOCTTOU re-checks are needed.
func SafeOpenPFRules() []string {
	return []string{
		`pftables -o LNK_FILE_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`,
	}
}
