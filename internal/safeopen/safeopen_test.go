package safeopen

import (
	"errors"
	"strings"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

func newWorld(t *testing.T, withPF bool) *programs.World {
	t.Helper()
	var w *programs.World
	if withPF {
		cfg := pf.Optimized()
		w = programs.NewWorld(programs.WorldOpts{PF: &cfg})
		if _, err := w.InstallRules(SafeOpenPFRules()); err != nil {
			t.Fatal(err)
		}
	} else {
		w = programs.NewWorld(programs.WorldOpts{})
	}
	return w
}

func victim(w *programs.World) *kernel.Proc {
	return w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
}

// mkTmpFile creates /tmp/<name> as the adversary and closes it.
func mkTmpFile(t *testing.T, adv *kernel.Proc, name string) {
	t.Helper()
	fd, err := adv.Open("/tmp/"+name, kernel.O_CREAT|kernel.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	adv.Close(fd)
}

func TestAllVariantsOpenPlainFile(t *testing.T) {
	w := newWorld(t, true)
	adv := w.NewUser()
	mkTmpFile(t, adv, "plain")
	v := victim(w)
	for name, open := range map[string]func(*kernel.Proc, string) (int, error){
		"open": Open, "open_nofollow": OpenNoFollow, "open_nolink": OpenNoLink,
		"open_race": OpenRace, "safe_open": SafeOpen, "safe_open_pf": SafeOpenPF,
	} {
		fd, err := open(v, "/tmp/plain")
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		v.Close(fd)
	}
}

func TestNoLinkVariantsRejectSymlink(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	if err := adv.Symlink("/etc/passwd", "/tmp/ln"); err != nil {
		t.Fatal(err)
	}
	v := victim(w)
	if _, err := OpenNoLink(v, "/tmp/ln"); !errors.Is(err, ErrIsSymlink) {
		t.Errorf("open_nolink: %v", err)
	}
	if _, err := OpenRace(v, "/tmp/ln"); !errors.Is(err, ErrIsSymlink) {
		t.Errorf("open_race: %v", err)
	}
	if _, err := OpenNoFollow(v, "/tmp/ln"); err == nil {
		t.Error("open_nofollow should fail on symlink")
	}
	// The bare open happily follows — the baseline vulnerability.
	fd, err := Open(v, "/tmp/ln")
	if err != nil {
		t.Errorf("bare open: %v", err)
	} else {
		v.Close(fd)
	}
}

// flipToSymlink registers a hook that swaps /tmp/f to a symlink at the
// victim's first open syscall — the classic TOCTTOU interleaving.
func flipToSymlink(w *programs.World, v, adv *kernel.Proc, target string) func() {
	flipped := false
	id := w.K.AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == v && nr == kernel.NrOpen && !flipped {
			flipped = true
			adv.Unlink("/tmp/f")
			adv.Symlink(target, "/tmp/f")
		}
	})
	return func() { w.K.RemoveHook(id) }
}

func TestOpenNoLinkLosesTheRace(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	mkTmpFile(t, adv, "f")
	v := victim(w)
	defer flipToSymlink(w, v, adv, "/etc/shadow")()

	fd, err := OpenNoLink(v, "/tmp/f")
	if err != nil {
		t.Fatalf("the race should succeed against open_nolink: %v", err)
	}
	st, _ := v.Fstat(fd)
	if lbl := w.K.Policy.SIDs().Label(st.SID); lbl != "shadow_t" {
		t.Errorf("race reached %q, want shadow_t", lbl)
	}
}

func TestOpenRaceDetectsTheFlip(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	mkTmpFile(t, adv, "f")
	v := victim(w)
	defer flipToSymlink(w, v, adv, "/etc/shadow")()

	if _, err := OpenRace(v, "/tmp/f"); !errors.Is(err, ErrRace) {
		t.Errorf("open_race: %v, want ErrRace", err)
	}
}

// TestCryogenicSleep reproduces Olaf Kirch's attack: the adversary arranges
// for the opened object to reuse the checked inode number, defeating the
// fstat comparison; only the second lstat (or the firewall) catches it.
func TestCryogenicSleep(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	mkTmpFile(t, adv, "f")
	v := victim(w)

	flipped := false
	id := w.K.AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == v && nr == kernel.NrOpen && !flipped {
			flipped = true
			// Free the checked inode number, then create the decoy target
			// so it recycles that exact number, then plant the symlink.
			adv.Unlink("/tmp/f")
			fd, _ := adv.Open("/tmp/decoy", kernel.O_CREAT|kernel.O_RDWR, 0o666)
			adv.Close(fd)
			adv.Symlink("/tmp/decoy", "/tmp/f")
		}
	})
	defer w.K.RemoveHook(id)

	// Stage 1: verify the deception — lstat ino equals the post-open fstat
	// ino, so the naive fstat-only comparison passes.
	lst, err := v.Lstat("/tmp/f")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/tmp/f", kernel.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fst, _ := v.Fstat(fd)
	if fst.Ino != lst.Ino {
		t.Fatalf("cryogenic setup failed: ino %d vs %d", fst.Ino, lst.Ino)
	}
	// Stage 2: the second lstat sees a symlink with a different inode —
	// exactly what open_race's final check detects.
	lst2, _ := v.Lstat("/tmp/f")
	if lst2.Ino == fst.Ino {
		t.Fatal("second lstat should observe the planted symlink")
	}
	v.Close(fd)
}

func TestOpenRaceDefeatsCryogenicSleep(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	mkTmpFile(t, adv, "f")
	v := victim(w)

	flipped := false
	id := w.K.AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == v && nr == kernel.NrOpen && !flipped {
			flipped = true
			adv.Unlink("/tmp/f")
			fd, _ := adv.Open("/tmp/decoy", kernel.O_CREAT|kernel.O_RDWR, 0o666)
			adv.Close(fd)
			adv.Symlink("/tmp/decoy", "/tmp/f")
		}
	})
	defer w.K.RemoveHook(id)

	if _, err := OpenRace(v, "/tmp/f"); !errors.Is(err, ErrRace) {
		t.Errorf("open_race vs cryogenic sleep: %v, want ErrRace", err)
	}
}

func TestSafeOpenRejectsCrossOwnerLink(t *testing.T) {
	w := newWorld(t, false)
	adv := w.NewUser()
	if err := adv.Symlink("/etc/passwd", "/tmp/cross"); err != nil {
		t.Fatal(err)
	}
	v := victim(w)
	if _, err := SafeOpen(v, "/tmp/cross"); !errors.Is(err, ErrOwnerMismatch) {
		t.Errorf("safe_open: %v, want ErrOwnerMismatch", err)
	}
}

func TestSafeOpenAllowsAdversaryOwnLinks(t *testing.T) {
	// Chari et al.: a link is fine when it points within its owner's files.
	w := newWorld(t, false)
	adv := w.NewUser()
	mkTmpFile(t, adv, "mine")
	if err := adv.Symlink("/tmp/mine", "/tmp/tomine"); err != nil {
		t.Fatal(err)
	}
	v := victim(w)
	fd, err := SafeOpen(v, "/tmp/tomine")
	if err != nil {
		t.Fatalf("safe_open own-file link: %v", err)
	}
	v.Close(fd)
}

func TestSafeOpenPFBlocksCrossOwnerLink(t *testing.T) {
	w := newWorld(t, true)
	adv := w.NewUser()
	if err := adv.Symlink("/etc/passwd", "/tmp/cross"); err != nil {
		t.Fatal(err)
	}
	v := victim(w)
	if _, err := SafeOpenPF(v, "/tmp/cross"); !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("safe_open_pf: %v, want ErrPFDenied", err)
	}
	// Own-file links still work (no false positive).
	mkTmpFile(t, adv, "mine")
	if err := adv.Symlink("/tmp/mine", "/tmp/tomine"); err != nil {
		t.Fatal(err)
	}
	fd, err := SafeOpenPF(v, "/tmp/tomine")
	if err != nil {
		t.Fatalf("safe_open_pf own-file link: %v", err)
	}
	v.Close(fd)
}

func TestSafeOpenPFImmuneToRace(t *testing.T) {
	// The firewall-assisted variant resolves atomically in the kernel:
	// the flip happens before the single open, so the symlink is seen and
	// blocked; there is no check/use window at all.
	w := newWorld(t, true)
	adv := w.NewUser()
	mkTmpFile(t, adv, "f")
	v := victim(w)
	defer flipToSymlink(w, v, adv, "/etc/shadow")()

	if _, err := SafeOpenPF(v, "/tmp/f"); !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("safe_open_pf under race: %v, want ErrPFDenied", err)
	}
}

func TestSyscallCostOrdering(t *testing.T) {
	// The premise of Figure 4: each stronger program-side variant costs
	// more system calls, while safe_open_pf costs the same as bare open.
	w := newWorld(t, true)
	adv := w.NewUser()
	adv.Mkdir("/tmp/a", 0o777)
	adv.Mkdir("/tmp/a/b", 0o777)
	fd, err := adv.Open("/tmp/a/b/f", kernel.O_CREAT|kernel.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	adv.Close(fd)
	v := victim(w)

	cost := func(open func(*kernel.Proc, string) (int, error)) uint64 {
		before := w.K.SyscallCount.Load()
		fd, err := open(v, "/tmp/a/b/f")
		if err != nil {
			t.Fatal(err)
		}
		after := w.K.SyscallCount.Load()
		v.Close(fd)
		return after - before
	}

	open := cost(Open)
	nolink := cost(OpenNoLink)
	race := cost(OpenRace)
	safe := cost(SafeOpen)
	pfv := cost(SafeOpenPF)

	if !(open < nolink && nolink < race && race < safe) {
		t.Errorf("cost ordering violated: open=%d nolink=%d race=%d safe=%d", open, nolink, race, safe)
	}
	if pfv != open {
		t.Errorf("safe_open_pf costs %d syscalls, want %d (same as open)", pfv, open)
	}
	// Chari et al.: at least 4 extra syscalls per component for safe_open.
	if safe < open+4*3 {
		t.Errorf("safe_open = %d syscalls; expected ≥ %d for 3 components", safe, open+12)
	}
}

func TestFigure4Harness(t *testing.T) {
	// Each variant completes at every paper path length and the harness
	// labels cells correctly.
	for _, n := range PaperPathLens {
		for _, v := range Variants() {
			c := RunCell(v, n, 10)
			if c.NsPerOp <= 0 || c.Variant != v.Name || c.PathLen != n {
				t.Errorf("cell %+v", c)
			}
		}
	}
}

func TestFigure4Format(t *testing.T) {
	cells := Run(5)
	out := Format(cells)
	for _, want := range []string{"safe_open", "safe_open_PF", "open_race", "n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestSafeOpenCostGrowsLinearlyWithPathLength(t *testing.T) {
	// The mechanism behind Figure 4, asserted on syscall counts rather
	// than wall time: safe_open's extra cost per component is constant
	// (≥4), so total syscalls grow linearly in n while safe_open_PF stays
	// flat at the bare-open count.
	countFor := func(n int, open func(*kernel.Proc, string) (int, error), withPF bool) uint64 {
		w, p, path := Figure4World(n, withPF)
		before := w.K.SyscallCount.Load()
		fd, err := open(p, path)
		if err != nil {
			t.Fatal(err)
		}
		p.Close(fd)
		return w.K.SyscallCount.Load() - before
	}

	s1 := countFor(1, SafeOpen, false)
	s4 := countFor(4, SafeOpen, false)
	s7 := countFor(7, SafeOpen, false)
	// Linear growth: equal increments per component band.
	if (s4-s1) != (s7-s4) || s4 <= s1 {
		t.Errorf("safe_open syscalls: n=1:%d n=4:%d n=7:%d (want linear)", s1, s4, s7)
	}
	p1 := countFor(1, SafeOpenPF, true)
	p7 := countFor(7, SafeOpenPF, true)
	if p1 != p7 {
		t.Errorf("safe_open_PF syscalls: n=1:%d n=7:%d (want constant)", p1, p7)
	}
}
