package audit

import (
	"errors"
	"strings"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/trace"
)

func TestDenialsAggregation(t *testing.T) {
	s := trace.NewStore()
	for i := 0; i < 3; i++ {
		s.Add(trace.Record{Verdict: "DROP", Program: "/lib/ld-2.15.so", Entrypoint: 0x596b,
			Op: "FILE_OPEN", ObjectLabel: "tmp_t", Path: "/tmp/evil.so", AdvWrite: true})
	}
	s.Add(trace.Record{Verdict: "DROP", Program: "/usr/bin/java", Entrypoint: 0x5d7e,
		Op: "FILE_OPEN", ObjectLabel: "user_home_t", Path: "/home/user/.hotspotrc", AdvWrite: true})
	s.Add(trace.Record{Verdict: "ACCEPT", Program: "/usr/bin/java", Entrypoint: 0x5d7e,
		Op: "FILE_OPEN", ObjectLabel: "etc_t", Path: "/etc/java.conf"})

	groups := Denials(s)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (accepts excluded)", len(groups))
	}
	// Sorted by count descending.
	if groups[0].Count != 3 || groups[0].Key.Program != "/lib/ld-2.15.so" {
		t.Errorf("top group = %+v", groups[0])
	}
	if len(groups[0].Paths) != 1 || groups[0].Paths[0] != "/tmp/evil.so" {
		t.Errorf("paths = %v", groups[0].Paths)
	}
}

func TestSuspiciousFilter(t *testing.T) {
	groups := []DenialGroup{
		{Key: DenialKey{Program: "/a"}, Count: 5, AdvWrite: true},
		{Key: DenialKey{Program: "/b"}, Count: 5, AdvWrite: false},
		{Key: DenialKey{Program: "/c"}, Count: 1, AdvWrite: true},
	}
	sus := Suspicious(groups, 2)
	if len(sus) != 1 || sus[0].Key.Program != "/a" {
		t.Errorf("suspicious = %+v", sus)
	}
}

func TestReportRendering(t *testing.T) {
	out := Report([]DenialGroup{{
		Key:   DenialKey{Program: "/lib/ld-2.15.so", Entrypoint: 0x596b, Op: "FILE_OPEN", ObjectLbl: "tmp_t"},
		Count: 7, AdvWrite: true, Paths: []string{"/tmp/evil.so"},
	}})
	for _, want := range []string{"/lib/ld-2.15.so", "0x596b", "/tmp/evil.so", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if Report(nil) != "no denials recorded\n" {
		t.Error("empty report wrong")
	}
}

// TestDenialLogEndToEnd reproduces the Icecat workflow (Section 6.1.2):
// the firewall silently blocks an attack; the denial log later reveals it.
func TestDenialLogEndToEnd(t *testing.T) {
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(programs.StandardRules()); err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore()
	w.Engine.Logger = store.Collector(w.K.Policy.SIDs())
	w.Engine.LogDenials = true

	// Adversary plants a Trojan library; Icecat starts with its buggy
	// environment and keeps working (trusted libs load).
	adv := w.NewUser()
	fd, err := adv.Open("/home/user/libssl.so", kernel.O_CREAT|kernel.O_RDWR, 0o755)
	if err != nil {
		t.Fatal(err)
	}
	adv.Close(fd)
	ice := programs.NewIcecat(w)
	p := ice.Spawn("/home/user")
	if _, _, err := ice.Start(p); err != nil {
		t.Fatalf("icecat should keep working: %v", err)
	}

	// The operator reviews the log afterwards.
	groups := Denials(store)
	if len(groups) == 0 {
		t.Fatal("the blocked library load must appear in the denial log")
	}
	sus := Suspicious(groups, 1)
	if len(sus) == 0 {
		t.Fatal("an adversary-writable denial must rank as suspicious")
	}
	found := false
	for _, g := range sus {
		for _, path := range g.Paths {
			if strings.Contains(path, "libssl.so") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("denial log lacks the trojan path: %+v", sus)
	}
}

func TestDenialLoggingOffByDefault(t *testing.T) {
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	w.InstallRules([]string{`pftables -o LNK_FILE_READ -d tmp_t -j DROP`})
	store := trace.NewStore()
	w.Engine.Logger = store.Collector(w.K.Policy.SIDs())

	adv := w.NewUser()
	adv.Symlink("/etc/shadow", "/tmp/trap")
	victim := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	if _, err := victim.Open("/tmp/trap", kernel.O_RDONLY, 0); !errors.Is(err, kernel.ErrPFDenied) {
		t.Fatalf("open: %v", err)
	}
	if store.Len() != 0 {
		t.Errorf("no records expected without LogDenials, got %d", store.Len())
	}
}

func TestDenialsDeterministicOrder(t *testing.T) {
	// Two groups with equal counts in the same program but different
	// entrypoints/ops, with paths arriving out of order: the output must
	// be identical run to run regardless of map iteration.
	build := func() *trace.Store {
		s := trace.NewStore()
		for _, r := range []trace.Record{
			{Program: "/usr/bin/a", Entrypoint: 0x20, Op: "FILE_OPEN", ObjectLabel: "tmp_t", Path: "/tmp/z", Verdict: "DROP"},
			{Program: "/usr/bin/a", Entrypoint: 0x10, Op: "FILE_OPEN", ObjectLabel: "tmp_t", Path: "/tmp/b", Verdict: "DROP"},
			{Program: "/usr/bin/a", Entrypoint: 0x10, Op: "FILE_OPEN", ObjectLabel: "tmp_t", Path: "/tmp/a", Verdict: "DROP"},
			{Program: "/usr/bin/a", Entrypoint: 0x20, Op: "FILE_OPEN", ObjectLabel: "tmp_t", Path: "/tmp/y", Verdict: "DROP"},
			{Program: "/usr/bin/a", Entrypoint: 0x10, Op: "LNK_FILE_READ", ObjectLabel: "tmp_t", Path: "/tmp/l", Verdict: "DROP"},
			{Program: "/usr/bin/a", Entrypoint: 0x10, Op: "LNK_FILE_READ", ObjectLabel: "tmp_t", Path: "/tmp/k", Verdict: "DROP"},
			{Program: "/usr/bin/b", Entrypoint: 0x10, Op: "FILE_OPEN", ObjectLabel: "etc_t", Path: "/etc/x", Verdict: "ACCEPT"},
		} {
			s.Add(r)
		}
		return s
	}
	first := Report(Denials(build()))
	for i := 0; i < 20; i++ {
		if got := Report(Denials(build())); got != first {
			t.Fatalf("nondeterministic report on run %d:\n%s\n---\n%s", i, got, first)
		}
	}
	groups := Denials(build())
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (ACCEPT excluded)", len(groups))
	}
	// Equal counts: ordered by entrypoint then op within the program.
	if groups[0].Key.Entrypoint != 0x10 || groups[0].Key.Op != "FILE_OPEN" ||
		groups[1].Key.Entrypoint != 0x10 || groups[1].Key.Op != "LNK_FILE_READ" ||
		groups[2].Key.Entrypoint != 0x20 {
		t.Errorf("tie-break order wrong: %+v", groups)
	}
	// Paths sorted within each group.
	if len(groups[0].Paths) != 2 || groups[0].Paths[0] != "/tmp/a" || groups[0].Paths[1] != "/tmp/b" {
		t.Errorf("paths not sorted: %v", groups[0].Paths)
	}
	// TopN truncates and tolerates out-of-range n.
	if got := TopN(groups, 2); len(got) != 2 {
		t.Errorf("TopN(2) = %d groups", len(got))
	}
	if got := TopN(groups, 0); len(got) != 3 {
		t.Errorf("TopN(0) = %d groups, want all", len(got))
	}
	if got := TopN(groups, 99); len(got) != 3 {
		t.Errorf("TopN(99) = %d groups, want all", len(got))
	}
}
