// Package audit analyzes Process Firewall denial logs — the operational
// loop the paper describes: administrators review what the firewall
// silently blocked (that is how the authors noticed the unknown Icecat
// vulnerability, Section 6.1.2) and distinguish real attacks from rules
// that need refinement.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"pfirewall/internal/trace"
)

// DenialKey groups denials by who was blocked doing what to what.
type DenialKey struct {
	Program    string
	Entrypoint uint64
	Op         string
	ObjectLbl  string
}

// DenialGroup is one aggregated denial pattern.
type DenialGroup struct {
	Key   DenialKey
	Count int
	// Paths are the distinct resource names involved (capped).
	Paths []string
	// AdvWrite reports whether the blocked resources were
	// adversary-writable — strong evidence the denial was a real attack
	// rather than a false positive.
	AdvWrite bool
}

// maxPathsPerGroup caps the example paths carried per group.
const maxPathsPerGroup = 5

// Denials extracts and aggregates DROP records from a trace store.
func Denials(s *trace.Store) []DenialGroup {
	groups := map[DenialKey]*DenialGroup{}
	for _, r := range s.Records() {
		if r.Verdict != "DROP" {
			continue
		}
		k := DenialKey{Program: r.Program, Entrypoint: r.Entrypoint, Op: r.Op, ObjectLbl: r.ObjectLabel}
		g, ok := groups[k]
		if !ok {
			g = &DenialGroup{Key: k}
			groups[k] = g
		}
		g.Count++
		if r.AdvWrite {
			g.AdvWrite = true
		}
		if r.Path != "" && len(g.Paths) < maxPathsPerGroup {
			dup := false
			for _, p := range g.Paths {
				if p == r.Path {
					dup = true
					break
				}
			}
			if !dup {
				g.Paths = append(g.Paths, r.Path)
			}
		}
	}
	out := make([]DenialGroup, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g.Paths)
		out = append(out, *g)
	}
	// Fully deterministic order: count descending, then the whole key —
	// two groups can share a program (different entrypoints or ops), and
	// map iteration order must never leak into operator-facing output.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		a, b := out[i].Key, out[j].Key
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if a.Entrypoint != b.Entrypoint {
			return a.Entrypoint < b.Entrypoint
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.ObjectLbl < b.ObjectLbl
	})
	return out
}

// TopN returns the first n groups (all of them when n <= 0 or exceeds the
// group count) — the summary slice pfctl -stats embeds.
func TopN(groups []DenialGroup, n int) []DenialGroup {
	if n <= 0 || n > len(groups) {
		n = len(groups)
	}
	return groups[:n]
}

// Report renders the denial groups as the operator-facing summary.
func Report(groups []DenialGroup) string {
	if len(groups) == 0 {
		return "no denials recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-28s %-12s %-26s %-10s %s\n",
		"count", "program", "entrypoint", "operation", "advwrite", "example paths")
	for _, g := range groups {
		fmt.Fprintf(&b, "%-8d %-28s 0x%-10x %-26s %-10v %s\n",
			g.Count, g.Key.Program, g.Key.Entrypoint, g.Key.Op, g.AdvWrite,
			strings.Join(g.Paths, ", "))
	}
	return b.String()
}

// Suspicious filters groups down to likely real attacks: repeated denials
// of adversary-writable resources.
func Suspicious(groups []DenialGroup, minCount int) []DenialGroup {
	var out []DenialGroup
	for _, g := range groups {
		if g.AdvWrite && g.Count >= minCount {
			out = append(out, g)
		}
	}
	return out
}
