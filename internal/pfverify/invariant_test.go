package pfverify

import (
	"os"
	"strings"
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

// --- DSL ------------------------------------------------------------------

func TestParseInvariantsDSL(t *testing.T) {
	src := `
# comment
invariant full {
    require ACCEPT
    op FILE_OPEN LNK_FILE_READ
    subject !scl_* !tenant*
    object trusted
    entry /lib/ld-2.15.so:0x596b /usr/bin/apache2:0x41a20
    program /usr/bin/apache2
    adv-write yes
    adv-read no
    owner-diff yes
    cross-prefix 8
    sockns abstract
    port 80-443
    peer-uid 33
}
invariant minimal {
    op SOCKET_BIND  # trailing comment
}
`
	invs, err := ParseInvariants("t.inv", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 {
		t.Fatalf("got %d invariants, want 2", len(invs))
	}
	f := invs[0]
	if f.Name != "full" || f.Require != pf.VerdictAccept {
		t.Errorf("name/require wrong: %+v", f)
	}
	if len(f.Ops) != 2 || f.Ops[0] != pf.OpFileOpen || f.Ops[1] != pf.OpLnkFileRead {
		t.Errorf("ops wrong: %v", f.Ops)
	}
	if !f.Subject.Negate || len(f.Subject.Globs) != 2 {
		t.Errorf("subject scope wrong: %+v", f.Subject)
	}
	if !f.Object.Trusted {
		t.Errorf("object scope wrong: %+v", f.Object)
	}
	if len(f.Entries) != 2 || f.Entries[0] != (pf.Entrypoint{Path: "/lib/ld-2.15.so", Off: 0x596b}) {
		t.Errorf("entries wrong: %v", f.Entries)
	}
	if f.Program != "/usr/bin/apache2" || f.AdvWrite != optYes || f.AdvRead != optNo ||
		f.OwnerDiff != optYes || f.CrossPrefix != 8 || f.SockNS != "abstract" ||
		!f.HasPort || f.PortMin != 80 || f.PortMax != 443 || !f.HasPeer || f.PeerUID != 33 {
		t.Errorf("directives wrong: %+v", f)
	}
	if f.Pos.Line != 3 {
		t.Errorf("position wrong: %v", f.Pos)
	}
	m := invs[1]
	if m.Name != "minimal" || m.Require != pf.VerdictDrop || len(m.Ops) != 1 {
		t.Errorf("minimal block wrong: %+v", m)
	}

	for _, bad := range []string{
		"invariant x {\n}",               // no op
		"invariant x {\nop NOT_AN_OP\n}", // unknown op
		"invariant x {\nop FILE_OPEN\nrequire MAYBE\n}",
		"invariant x {\nop FILE_OPEN\nfrobnicate yes\n}",
		"invariant x {\nop FILE_OPEN\n", // unclosed
		"op FILE_OPEN\n",                // directive outside block
		"invariant x {\nop FILE_OPEN\nentry noColon\n}",
	} {
		if _, err := ParseInvariants("t.inv", bad); err == nil {
			t.Errorf("ParseInvariants accepted %q", bad)
		}
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"tenant??_home_t", "tenant00_home_t", true},
		{"tenant??_home_t", "tenant0_home_t", false},
		{"scl_*", "scl_obj03_t", true},
		{"scl_*", "lib_t", false},
		{"*_t", "lib_t", true},
		{"lib_t", "lib_t", true},
		{"lib_t", "lib_tt", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pat, c.s); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

// --- helpers --------------------------------------------------------------

func readLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(b), "\n")
}

func loadInvariants(t *testing.T, path string) []*Invariant {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	invs, err := ParseInvariants(path, string(b))
	if err != nil {
		t.Fatal(err)
	}
	return invs
}

// worldWith builds a standard world and installs the given ruleset lines.
func worldWith(t *testing.T, lines []string) *programs.World {
	t.Helper()
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(lines); err != nil {
		t.Fatal(err)
	}
	return w
}

func resultFor(t *testing.T, rep *Report, name string) *InvariantResult {
	t.Helper()
	for i := range rep.Results {
		if rep.Results[i].Invariant.Name == name {
			return &rep.Results[i]
		}
	}
	t.Fatalf("no result for invariant %q", name)
	return nil
}

// firstDefinite returns the first definite violation of the named invariant.
func firstDefinite(t *testing.T, rep *Report, name string) *Violation {
	t.Helper()
	res := resultFor(t, rep, name)
	for i := range res.Violations {
		if res.Violations[i].Definite {
			return &res.Violations[i]
		}
	}
	t.Fatalf("invariant %q has no definite violation (count=%d)", name, res.ViolationCount)
	return nil
}

// --- proofs over the shipped rulesets -------------------------------------

func TestStandardInvariantsHold(t *testing.T) {
	w := worldWith(t, programs.StandardRules())
	invs := loadInvariants(t, "../../examples/rules/standard.inv")
	rep := Check(FromEngine(w.Engine), w.Env.Policy.SIDs(), invs)
	if rep.Points == 0 {
		t.Fatal("sweep covered no points")
	}
	for _, res := range rep.Results {
		if !res.Holds || !res.Definitely {
			t.Errorf("invariant %s violated on the standard ruleset: %d violations, e.g. %v",
				res.Invariant.Name, res.ViolationCount, res.Violations)
		}
	}
}

func TestWebserverInvariantsHold(t *testing.T) {
	w := worldWith(t, readLines(t, "../../examples/rules/webserver.pft"))
	invs := loadInvariants(t, "../../examples/rules/webserver.inv")
	rep := Check(FromEngine(w.Engine), w.Env.Policy.SIDs(), invs)
	for _, res := range rep.Results {
		if !res.Holds || !res.Definitely {
			t.Errorf("invariant %s violated on the webserver ruleset: %d violations, e.g. %v",
				res.Invariant.Name, res.ViolationCount, res.Violations)
		}
	}
}

func TestWorldgenTenantInvariantHolds(t *testing.T) {
	cfg := pf.Optimized()
	gw := worldgen.Build(worldgen.Tiny, programs.WorldOpts{PF: &cfg})
	invs, err := ParseInvariants("<worldgen>", worldgen.Invariants())
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(FromEngine(gw.World.Engine), gw.World.Env.Policy.SIDs(), invs)
	res := resultFor(t, rep, "tenant-home-no-serve")
	if !res.Holds || !res.Definitely {
		t.Fatalf("tenant invariant violated on the intact worldgen ruleset: %v", res.Violations)
	}
	if res.Points < worldgen.Tiny.Tenants {
		t.Fatalf("sweep too small: %d points for %d tenants", res.Points, worldgen.Tiny.Tenants)
	}
}

// --- seeded violations, each with an in-world-replaying witness -----------

// Seeded violation 1: drop R1 — the dynamic linker loses its library guard.
func TestSeededViolationLdRuleRemoved(t *testing.T) {
	var lines []string
	for _, l := range programs.StandardRules() {
		if strings.Contains(l, "0x596b") {
			continue
		}
		lines = append(lines, l)
	}
	w := worldWith(t, lines)
	invs := loadInvariants(t, "../../examples/rules/standard.inv")
	rep := Check(FromEngine(w.Engine), w.Env.Policy.SIDs(), invs)
	if !rep.Violated() {
		t.Fatal("removing R1 went undetected")
	}
	v := firstDefinite(t, rep, "ld-untrusted-library")
	if v.Got != pf.VerdictAccept || v.Rule != nil {
		t.Errorf("violation should be a default-allow accept, got %v", v)
	}
	// The other invariants keep holding: the regression is localized.
	for _, name := range []string{"safe-open-owner-diff", "dbus-connect-trusted-socket"} {
		if res := resultFor(t, rep, name); !res.Holds {
			t.Errorf("invariant %s should still hold", name)
		}
	}
	rr := Replay(v, lines)
	if rr.Err != nil || rr.Skipped {
		t.Fatalf("replay failed: %+v", rr)
	}
	if !rr.Reproduced {
		t.Fatalf("witness did not reproduce: symbolic %v, concrete %v", v.Got, rr.Verdict)
	}
}

// Seeded violation 2: drop the system-wide safe_open rule — symlink
// interposition comes back.
func TestSeededViolationSafeOpenRemoved(t *testing.T) {
	var lines []string
	for _, l := range programs.StandardRules() {
		if strings.Contains(l, "LNK_FILE_READ") {
			continue
		}
		lines = append(lines, l)
	}
	w := worldWith(t, lines)
	invs := loadInvariants(t, "../../examples/rules/standard.inv")
	rep := Check(FromEngine(w.Engine), w.Env.Policy.SIDs(), invs)
	v := firstDefinite(t, rep, "safe-open-owner-diff")
	if !v.Ctx.TgtOwner.Avail || v.Ctx.Owner.V == v.Ctx.TgtOwner.V {
		t.Fatalf("witness should pin an owner-differs symlink, got %+v", v.Ctx)
	}
	rr := Replay(v, lines)
	if rr.Err != nil || rr.Skipped || !rr.Reproduced {
		t.Fatalf("replay: %+v", rr)
	}
	// Control: with the full ruleset the same witness open is dropped, so
	// the reproduction really is about the removed rule.
	ctrl := Replay(v, programs.StandardRules())
	if ctrl.Err != nil || ctrl.Skipped {
		t.Fatalf("control replay: %+v", ctrl)
	}
	if ctrl.Verdict != pf.VerdictDrop {
		t.Fatalf("control world should drop the witness, got %v", ctrl.Verdict)
	}
}

// Seeded violation 3: a generic ACCEPT inserted at the head of input
// preempts the entrypoint-qualified guards — the routing-order exploit.
func TestSeededViolationGenericPreempt(t *testing.T) {
	lines := readLines(t, "../../examples/rules/webserver.pft")
	preempt := "pftables -I input -s httpd_t -o FILE_OPEN -j ACCEPT"
	lines = append(lines, preempt)
	w := worldWith(t, lines)
	invs := loadInvariants(t, "../../examples/rules/webserver.inv")
	rep := Check(FromEngine(w.Engine), w.Env.Policy.SIDs(), invs)

	for _, name := range []string{"httpd-no-shadow", "httpd-serve-content-only"} {
		v := firstDefinite(t, rep, name)
		if v.Rule == nil {
			t.Fatalf("%s: violation should cite the preempting rule", name)
		}
		rr := Replay(v, lines)
		if rr.Err != nil || rr.Skipped || !rr.Reproduced {
			t.Fatalf("%s replay: %+v", name, rr)
		}
	}
}

// Seeded violation 4: remove one tenant's home guard from a built worldgen
// world's engine — tenant non-interference breaks for exactly that tenant.
func TestSeededViolationWorldgenGuardRemoved(t *testing.T) {
	cfg := pf.Optimized()
	gw := worldgen.Build(worldgen.Tiny, programs.WorldOpts{PF: &cfg})
	w := gw.World
	tbl := w.Env.Policy.SIDs()
	sid00 := tbl.SID("tenant00_home_t")
	err := w.Engine.Remove("input", func(r *pf.Rule) bool {
		return r.EntrySet && r.Program == programs.BinApache &&
			r.Entry == programs.EntryApacheServe &&
			r.Object != nil && r.Object.Contains(sid00)
	})
	if err != nil {
		t.Fatal(err)
	}

	invs, perr := ParseInvariants("<worldgen>", worldgen.Invariants())
	if perr != nil {
		t.Fatal(perr)
	}
	rep := Check(FromEngine(w.Engine), tbl, invs)
	v := firstDefinite(t, rep, "tenant-home-no-serve")
	if v.Object != "tenant00_home_t" {
		t.Fatalf("violation should name the unguarded tenant, got %q", v.Object)
	}

	var lines []string
	for _, l := range worldgen.Rules(worldgen.Tiny) {
		if strings.Contains(l, "tenant00_home_t") {
			continue
		}
		lines = append(lines, l)
	}
	rr := Replay(v, lines)
	if rr.Err != nil || rr.Skipped || !rr.Reproduced {
		t.Fatalf("replay: %+v", rr)
	}
}

// Seeded violation 5: the same preempting delta arrives as an incremental
// pf.Tx publish — the refinement gate vetoes it before it becomes visible.
func TestSeededViolationTxDeltaGated(t *testing.T) {
	w := worldWith(t, readLines(t, "../../examples/rules/webserver.pft"))
	tbl := w.Env.Policy.SIDs()
	invs := loadInvariants(t, "../../examples/rules/webserver.inv")

	cmd, err := pftables.Parse(w.Env, "pftables -I input -s httpd_t -o FILE_OPEN -j ACCEPT")
	if err != nil {
		t.Fatal(err)
	}
	gate := Gate(w.Engine, tbl, invs)
	txErr := w.Engine.TransactionGated(func(tx *pf.Tx) error {
		return tx.Insert("input", cmd.Rule)
	}, gate)
	if txErr == nil {
		t.Fatal("gate let a weakening delta publish")
	}
	if !strings.Contains(txErr.Error(), "weakens") || !strings.Contains(txErr.Error(), "httpd-no-shadow") {
		t.Errorf("gate error should name the regressed invariant: %v", txErr)
	}

	// The veto kept the published generation intact: invariants still hold.
	rep := Check(FromEngine(w.Engine), tbl, invs)
	if rep.Violated() {
		t.Fatal("vetoed publish leaked into the engine")
	}

	// A harmless delta still publishes through the same gate.
	okCmd, err := pftables.Parse(w.Env, "pftables -A input -s httpd_t -d etc_t -o FILE_WRITE -j DROP")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Engine.TransactionGated(func(tx *pf.Tx) error {
		return tx.Append("input", okCmd.Rule)
	}, gate); err != nil {
		t.Fatalf("gate vetoed a non-weakening delta: %v", err)
	}
}

// --- refinement as a library call -----------------------------------------

func TestRefinesReportsOnlyRegressions(t *testing.T) {
	w := worldWith(t, readLines(t, "../../examples/rules/webserver.pft"))
	tbl := w.Env.Policy.SIDs()
	invs := loadInvariants(t, "../../examples/rules/webserver.inv")
	cur := FromEngine(w.Engine)

	// Candidate = current plus the preempting accept.
	w2 := worldWith(t, append(readLines(t, "../../examples/rules/webserver.pft"),
		"pftables -I input -s httpd_t -o FILE_OPEN -j ACCEPT"))
	cand := FromEngine(w2.Engine)

	regs := Refines(cur, cand, tbl, invs)
	if len(regs) == 0 {
		t.Fatal("weakened candidate reported as a refinement")
	}
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Invariant] = true
		if len(r.Violations) == 0 {
			t.Errorf("regression %s carries no witness", r.Invariant)
		}
	}
	if !names["httpd-no-shadow"] {
		t.Errorf("missing expected regression, got %v", names)
	}

	// Refinement is not equivalence: candidate == current refines.
	if regs := Refines(cur, cur, tbl, invs); len(regs) != 0 {
		t.Errorf("identity publish reported as regression: %v", regs)
	}
}

func TestRequireAcceptInvariant(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	drop := &pf.Rule{
		Subject: pf.NewSIDSet(false, sid(pol, "user_t")),
		Object:  pf.NewSIDSet(false, sid(pol, "tmp_t")),
		Ops:     pf.NewOpSet(pf.OpFileWrite),
		Target:  pf.Drop(),
	}
	if err := e.Append("input", drop); err != nil {
		t.Fatal(err)
	}
	invs, err := ParseInvariants("t.inv", `invariant tmp-writable {
    require ACCEPT
    op FILE_WRITE
    subject user_t
    object tmp_t
}`)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(FromEngine(e), pol.SIDs(), invs)
	v := firstDefinite(t, rep, "tmp-writable")
	if v.Got != pf.VerdictDrop || v.Rule != drop {
		t.Errorf("violation should cite the drop rule, got %+v", v)
	}
}
