// Package pfverify is a symbolic policy verifier for the Process Firewall:
// it evaluates a ruleset over *abstract* resource requests instead of
// concrete system calls, exhaustively sweeping the request space an
// invariant scopes — (operation × subject SID × entrypoint × binding-state
// flags such as adversary-writability and symlink owner mismatch × peer
// credential) — and checking declarative invariants against every reachable
// verdict.
//
// The evaluator mirrors the engine's routing exactly (batch.go): the
// mangle/input chain first, then the start chain (generic lane when
// entrypoint chains are compiled out), then the entrypoint index scan in
// stack order, with jumps, RETURN, STATE side effects, and the default
// allow all reproduced rule for rule. Context a point pins (labels, owners,
// entry frames) evaluates exactly; context a point leaves open (prior STATE
// dictionary contents, syscall arguments outside syscallbegin) evaluates
// three-valued, forking the walk on both branches so proofs stay sound.
// A verdict reached along a fork-free path is *definite*: it corresponds to
// a real request a concrete world can replay (witness.go), which is what
// keeps reported violations free of false alarms — the differential fuzz
// test enforces symbolic == concrete on the decidable fragment.
//
// Scaling: rules are pruned into (operation, subject-SID) lanes — the same
// factoring the engine's compiled dispatch index uses (compile.go) — so a
// sweep over a 10k-rule base only walks the rules that could match each
// point. The verifier-scale benchmark (internal/lmbench) records the sweep
// staying tractable at the largest rule base.
package pfverify

import (
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// Val is an abstract uint64 context value: unavailable (the concrete
// Resolve would fail), available with a known value, or available but
// unconstrained by the abstract point.
type Val struct {
	Avail bool
	Known bool
	V     uint64
}

// Known returns an available value pinned to v.
func Known(v uint64) Val { return Val{Avail: true, Known: true, V: v} }

// KnownInt pins an available value to a signed integer using the engine's
// encoding for uids and pids (uint64(int64(i))).
func KnownInt(i int) Val { return Known(uint64(int64(i))) }

// Unknown returns an available but unconstrained value.
func Unknown() Val { return Val{Avail: true} }

// None returns an unavailable value.
func None() Val { return Val{} }

// Ctx is one abstract request point: the symbolic analogue of pf.Request
// plus the context the engine's modules would lazily collect. Fields left
// at their zero value model "context unavailable", exactly like the
// concrete EvalCtx's ok=false paths.
type Ctx struct {
	Op      pf.Op
	Subject mac.SID
	// Program is the process's binary (ExecPath), matched by -p without -i.
	Program string
	// Entries is the abstract unwound stack in frame order; EntryFail
	// models an unwind failure (no entrypoint rule can match).
	Entries   []pf.Entrypoint
	EntryFail bool

	// HasObject gates every object-derived context, mirroring req.Obj.
	HasObject bool
	Object    mac.SID
	ObjID     Val // resource identifier (C_INO); forced available with object
	Owner     Val // DAC owner (C_DAC_OWNER); forced available with object
	TgtOwner  Val // symlink target owner (C_TGT_DAC_OWNER); Avail = is a link

	// Sig is non-nil for signal-delivery points.
	Sig *pf.SignalInfo

	// Socket peer credential and rendezvous context; ok-flags mirror the
	// SockResource extension.
	PeerOK  bool
	PeerUID Val
	PeerPID Val
	NSOK    bool
	NS      string
	PortOK  bool
	Port    Val

	// Syscall context. SyscallArgsUnknown widens every --arg slot (used by
	// invariant sweeps over non-syscallbegin points, where the in-flight
	// syscall is arbitrary); otherwise SyscallArgs is exact-length.
	SyscallNR          Val
	SyscallArgs        []Val
	SyscallArgsUnknown bool

	// State seeds the per-process STATE dictionary. StateUnknown widens
	// every key not present in State to "any value, possibly unset" — the
	// conservative abstraction for processes with arbitrary history; leave
	// it false to model a fresh process (empty dictionary), which is what
	// concrete witnesses replay.
	State        map[uint64]Val
	StateUnknown bool
}

// normalize pins the availability bits the concrete engine guarantees.
func (c *Ctx) normalize() Ctx {
	n := *c
	if n.HasObject {
		if !n.ObjID.Avail {
			n.ObjID = Unknown()
		}
		if !n.Owner.Avail {
			n.Owner = Unknown()
		}
	} else {
		n.ObjID, n.Owner, n.TgtOwner = None(), None(), None()
	}
	if !n.SyscallNR.Avail {
		n.SyscallNR = Unknown()
	}
	return n
}

// Result summarizes every path the walk explored for one point.
type Result struct {
	// MayAccept / MayDrop: the verdict is reachable along some path
	// (including widened ones). Their absence is a proof.
	MayAccept bool
	MayDrop   bool
	// DefiniteAccept / DefiniteDrop: the verdict is reachable along a
	// fork-free path — a concrete request realizes it.
	DefiniteAccept bool
	DefiniteDrop   bool
	// AcceptRule / DropRule decide some definite path with that verdict;
	// nil AcceptRule on a definite accept means the default allow.
	AcceptRule *pf.Rule
	DropRule   *pf.Rule
	// Exact: the walk never forked; Verdict is the single concrete outcome.
	Exact   bool
	Verdict pf.Verdict
	// Paths counts terminal paths; Truncated reports the fork budget was
	// exhausted and the result widened to both verdicts (still sound).
	Paths     int
	Truncated bool
}

// maxPaths bounds path explosion per point; beyond it the result widens.
const maxPaths = 512

// maxJumpDepth bounds the traversal frame stack. The concrete engine has
// no such guard — a jump cycle loops a real process forever, which is what
// pfcheck's jump-cycle finding exists to reject — so hitting this cap just
// widens the point instead of diverging.
const maxJumpDepth = 64

// builtin chains carry the generic/entrypoint lane split under EptChains.
func builtinChain(name string) bool { return name == "input" || name == "syscallbegin" }

type eptKey struct {
	chain   string
	program string
	off     uint64
}

type laneKey struct {
	chain   string
	generic bool
	op      pf.Op
	sid     mac.SID
}

type eptLaneKey struct {
	k   eptKey
	op  pf.Op
	sid mac.SID
}

// Evaluator is a symbolic interpreter over one immutable chain snapshot.
// It is not safe for concurrent use (the pruning-lane cache is unlocked);
// build one per goroutine — construction is O(rules).
type Evaluator struct {
	policy *mac.Policy
	cfg    pf.Config
	chains map[string]*pf.Chain

	total   int
	hasEpt  bool
	generic map[string][]*pf.Rule
	ept     map[eptKey][]*pf.Rule

	lanes    map[laneKey][]*pf.Rule
	eptLanes map[eptLaneKey][]*pf.Rule

	resIDs []uint64 // resource identifiers pinned by --res-id rules
}

// NewEvaluator builds an evaluator over a chain snapshot — the same
// immutable view a TransactionGated gate receives — under the given engine
// configuration (EptChains decides rule routing, exactly as in the engine).
func NewEvaluator(policy *mac.Policy, chains map[string]*pf.Chain, cfg pf.Config) *Evaluator {
	ev := &Evaluator{
		policy:   policy,
		cfg:      cfg,
		chains:   chains,
		generic:  make(map[string][]*pf.Rule),
		ept:      make(map[eptKey][]*pf.Rule),
		lanes:    make(map[laneKey][]*pf.Rule),
		eptLanes: make(map[eptLaneKey][]*pf.Rule),
	}
	for name, c := range chains {
		for _, r := range c.Rules {
			ev.total++
			if r.EntrySet {
				ev.hasEpt = true
			}
			if r.ResIDSet {
				ev.resIDs = append(ev.resIDs, r.ResID)
			}
			if cfg.EptChains && builtinChain(name) && r.EntrySet {
				k := eptKey{name, r.Program, r.Entry}
				ev.ept[k] = append(ev.ept[k], r)
			} else if builtinChain(name) {
				ev.generic[name] = append(ev.generic[name], r)
			}
		}
	}
	return ev
}

// FromEngine snapshots an engine's current chains into an evaluator.
func FromEngine(e *pf.Engine) *Evaluator {
	chains := make(map[string]*pf.Chain)
	for _, name := range e.Chains() {
		if c, ok := e.Chain(name); ok {
			chains[name] = c
		}
	}
	return NewEvaluator(e.Policy(), chains, e.Config())
}

// Policy returns the MAC policy adversary context derives from.
func (ev *Evaluator) Policy() *mac.Policy { return ev.policy }

// RuleCount returns the snapshot's total rule count.
func (ev *Evaluator) RuleCount() int { return ev.total }

// FreshResID returns a resource identifier no --res-id rule pins, so sweep
// points model "an arbitrary object" without tripping identifier-specific
// rules.
func (ev *Evaluator) FreshResID() uint64 {
	var max uint64 = 41
	for _, id := range ev.resIDs {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// PinnedResIDs returns the identifiers --res-id rules name, ascending-ish
// (install order); sweeps add one point per pin to cover identifier-specific
// rules.
func (ev *Evaluator) PinnedResIDs() []uint64 { return ev.resIDs }

// listFor resolves a chain's traversal list, mirroring
// Chain.traversalRules: the generic lane for built-in chains when
// entrypoint rules are indexed out, the full rule list otherwise.
func (ev *Evaluator) listFor(name string, skipEpt bool) []*pf.Rule {
	if skipEpt && builtinChain(name) {
		return ev.generic[name]
	}
	if c := ev.chains[name]; c != nil {
		return c.Rules
	}
	return nil
}

// lane returns listFor pruned to rules whose operation mask and subject set
// can match (op, sid) — the (op, subject-SID) factoring of compile.go.
// Pruned rules definitely do not match, so the walk is verdict-identical.
func (ev *Evaluator) lane(name string, skipEpt bool, op pf.Op, sid mac.SID) []*pf.Rule {
	key := laneKey{name, skipEpt && builtinChain(name), op, sid}
	if l, ok := ev.lanes[key]; ok {
		return l
	}
	src := ev.listFor(name, skipEpt)
	lane := make([]*pf.Rule, 0, 8)
	for _, r := range src {
		if r.Ops.Has(op) && r.Subject.Contains(sid) {
			lane = append(lane, r)
		}
	}
	ev.lanes[key] = lane
	return lane
}

// eptLane is lane for one entrypoint-index bucket.
func (ev *Evaluator) eptLane(k eptKey, op pf.Op, sid mac.SID) []*pf.Rule {
	key := eptLaneKey{k, op, sid}
	if l, ok := ev.eptLanes[key]; ok {
		return l
	}
	lane := make([]*pf.Rule, 0, 2)
	for _, r := range ev.ept[k] {
		if r.Ops.Has(op) && r.Subject.Contains(sid) {
			lane = append(lane, r)
		}
	}
	ev.eptLanes[key] = lane
	return lane
}

// Eval symbolically evaluates one abstract point against the snapshot and
// reports every reachable verdict.
func (ev *Evaluator) Eval(c *Ctx) Result {
	if ev.total == 0 {
		return Result{MayAccept: true, DefiniteAccept: true, Exact: true, Verdict: pf.VerdictAccept, Paths: 1}
	}
	ctx := c.normalize()
	w := &walker{ev: ev, ctx: &ctx}
	st := newAbsState(&ctx)

	start := "input"
	if ctx.Op == pf.OpSyscallBegin {
		start = "syscallbegin"
	}
	startPhase := func(st *absState) {
		skip := ev.cfg.EptChains
		w.runList(ev.lane(start, skip, ctx.Op, ctx.Subject), skip, st, func(st *absState) {
			w.eptScan(start, 0, 0, st)
		})
	}
	mangle := ev.chains["mangle/input"]
	if start == "input" && mangle != nil && len(mangle.Rules) > 0 {
		w.runList(ev.lane("mangle/input", false, ctx.Op, ctx.Subject), false, st, startPhase)
	} else {
		startPhase(st)
	}

	res := w.res
	if !w.forked && !res.Truncated {
		res.Exact = true
		if res.MayDrop {
			res.Verdict = pf.VerdictDrop
		} else {
			res.Verdict = pf.VerdictAccept
		}
	}
	return res
}

// --- abstract state ------------------------------------------------------

// absState is one path's per-process STATE dictionary plus path exactness.
type absState struct {
	m       map[uint64]Val
	unknown bool // keys absent from m may hold any value or be unset
	exact   bool // no widened fork taken on this path
}

func newAbsState(c *Ctx) *absState {
	st := &absState{unknown: c.StateUnknown, exact: true}
	if len(c.State) > 0 {
		st.m = make(map[uint64]Val, len(c.State))
		for k, v := range c.State {
			st.m[k] = v
		}
	}
	return st
}

func (st *absState) clone() *absState {
	n := &absState{unknown: st.unknown, exact: st.exact}
	if len(st.m) > 0 {
		n.m = make(map[uint64]Val, len(st.m))
		for k, v := range st.m {
			n.m[k] = v
		}
	}
	return n
}

func (st *absState) set(key uint64, v Val) {
	if st.m == nil {
		st.m = make(map[uint64]Val, 4)
	}
	st.m[key] = v
}

// --- the walk ------------------------------------------------------------

type tri uint8

const (
	triNo tri = iota
	triYes
	triUnknown
)

type frame struct {
	rules []*pf.Rule
	idx   int
}

// walker explores every path of one point's evaluation.
type walker struct {
	ev     *Evaluator
	ctx    *Ctx
	res    Result
	forked bool
}

// record notes one terminal path.
func (w *walker) record(v pf.Verdict, r *pf.Rule, exact bool) {
	w.res.Paths++
	if v == pf.VerdictDrop {
		w.res.MayDrop = true
		if exact && !w.res.DefiniteDrop {
			w.res.DefiniteDrop = true
			w.res.DropRule = r
		}
	} else {
		w.res.MayAccept = true
		if exact && !w.res.DefiniteAccept {
			w.res.DefiniteAccept = true
			w.res.AcceptRule = r
		}
	}
}

// truncate widens the result when the fork budget is exhausted.
func (w *walker) truncate() {
	w.res.Truncated = true
	w.res.MayAccept = true
	w.res.MayDrop = true
}

func (w *walker) budgetLeft() bool { return w.res.Paths < maxPaths && !w.res.Truncated }

// fall records the default-allow fall-through of one path.
func (w *walker) fall(st *absState) { w.record(pf.VerdictAccept, nil, st.exact) }

// runList walks one traversal (jump stack included) beginning at rules,
// invoking cont for every fall-through path. skipEpt is the traversal-list
// mode for built-in chains jumped into, mirroring traverseFrom.
func (w *walker) runList(rules []*pf.Rule, skipEpt bool, st *absState, cont func(*absState)) {
	w.step([]frame{{rules: rules}}, skipEpt, st, cont)
}

func cloneStack(stack []frame) []frame {
	return append([]frame(nil), stack...)
}

// step is traverseFrom in the abstract: pop exhausted frames, match the
// next rule, fire its target. Unknown matches fork the walk — the matched
// branch continues on cloned stack and state, the unmatched branch
// continues in place — and both branches lose exactness.
func (w *walker) step(stack []frame, skipEpt bool, st *absState, cont func(*absState)) {
	if w.res.Truncated {
		return
	}
	for {
		if len(stack) == 0 {
			cont(st)
			return
		}
		top := &stack[len(stack)-1]
		if top.idx >= len(top.rules) {
			stack = stack[:len(stack)-1]
			continue
		}
		r := top.rules[top.idx]
		top.idx++

		m, freshNo := w.matchAbs(r, st)
		switch m {
		case triNo:
			continue
		case triUnknown:
			if !w.budgetLeft() {
				w.truncate()
				return
			}
			w.forked = true
			// Matched branch: independent copy of the remaining traversal.
			stM := st.clone()
			stM.exact = false
			stackM := cloneStack(stack)
			if done := w.applyTarget(r, &stackM, stM, skipEpt); !done {
				w.step(stackM, skipEpt, stM, cont)
			}
			// Unmatched branch continues here; it stays definite when a
			// fresh-state process provably takes it.
			if !freshNo {
				st.exact = false
			}
			continue
		case triYes:
			if done := w.applyTarget(r, &stack, st, skipEpt); done {
				return
			}
		}
	}
}

// applyTarget fires r's target against the current traversal. It returns
// true when the path terminated (final verdict recorded).
func (w *walker) applyTarget(r *pf.Rule, stack *[]frame, st *absState, skipEpt bool) bool {
	switch t := r.Target.(type) {
	case *pf.VerdictTarget:
		w.record(t.V, r, st.exact)
		return true
	case *pf.ReturnTarget:
		// Pop to the calling chain; popping the base frame ends the walk
		// (the loop sees an empty stack and falls through).
		*stack = (*stack)[:len(*stack)-1]
	case *pf.JumpTarget:
		if _, ok := w.ev.chains[t.ChainName]; ok {
			if len(*stack) >= maxJumpDepth {
				w.truncate()
				return true
			}
			lane := w.ev.lane(t.ChainName, skipEpt, w.ctx.Op, w.ctx.Subject)
			*stack = append(*stack, frame{rules: lane})
		}
	case *pf.StateTarget:
		v := w.resolve(t.Val)
		if v.Avail {
			st.set(t.Key, v)
		}
	}
	// LogTarget and unknown side-effecting targets: continue.
	return false
}

// eptScan mirrors the entrypoint-index scan of Batch.Filter: entries in
// stack order, each bucket's rules in install order; a jump traverses the
// target chain with entrypoint rules inline; the first final verdict wins
// and a fall-through is the default allow.
func (w *walker) eptScan(start string, ei, ri int, st *absState) {
	if w.res.Truncated {
		return
	}
	c := w.ctx
	if !w.ev.cfg.EptChains || !w.ev.hasEpt || c.EntryFail {
		w.fall(st)
		return
	}
	for e := ei; e < len(c.Entries); e++ {
		ep := c.Entries[e]
		rules := w.ev.eptLane(eptKey{start, ep.Path, ep.Off}, c.Op, c.Subject)
		first := ri
		ri = 0
		for i := first; i < len(rules); i++ {
			r := rules[i]
			m, freshNo := w.matchAbs(r, st)
			if m == triNo {
				continue
			}
			if m == triUnknown {
				if !w.budgetLeft() {
					w.truncate()
					return
				}
				w.forked = true
				stM := st.clone()
				stM.exact = false
				if done := w.eptApply(start, e, i, r, stM); !done {
					w.eptScan(start, e, i+1, stM)
				}
				if !freshNo {
					st.exact = false
				}
				continue
			}
			if done := w.eptApply(start, e, i, r, st); done {
				return
			}
		}
	}
	w.fall(st)
}

// eptApply fires one entrypoint rule's target during the scan. It returns
// true when the caller's loop must stop (the path forked into a jump or
// terminated with a verdict). Resumption after a jump re-enters eptScan at
// the next rule of the same bucket.
func (w *walker) eptApply(start string, e, i int, r *pf.Rule, st *absState) bool {
	switch t := r.Target.(type) {
	case *pf.VerdictTarget:
		w.record(t.V, r, st.exact)
		return true
	case *pf.JumpTarget:
		if _, ok := w.ev.chains[t.ChainName]; ok {
			lane := w.ev.lane(t.ChainName, false, w.ctx.Op, w.ctx.Subject)
			w.runList(lane, false, st, func(st2 *absState) {
				w.eptScan(start, e, i+1, st2)
			})
			return true
		}
	case *pf.StateTarget:
		v := w.resolve(t.Val)
		if v.Avail {
			st.set(t.Key, v)
		}
	case *pf.ReturnTarget:
		// RETURN from an indexed entrypoint rule: the scan just continues
		// (the concrete loop ignores non-final, non-jump actions).
	}
	return false
}

// --- abstract matching ---------------------------------------------------

// matchAbs evaluates a rule's default matches and extension modules against
// the point: triNo when it definitely does not match, triYes when it
// definitely does, triUnknown when the abstraction leaves both possible.
//
// freshNo (meaningful only with triUnknown) reports that the rule's
// unmatched branch is exactly what a fresh-state concrete process does: at
// least one STATE match keyed a dictionary entry that is unset for a fresh
// process (a missing key never matches), and every other unknown arose the
// same way. The walk uses it to keep the unmatched branch definite, which
// is what makes default-allow violations under the widened-state sweep
// carry replayable witnesses.
func (w *walker) matchAbs(r *pf.Rule, st *absState) (out tri, freshNo bool) {
	c := w.ctx
	if !r.Ops.Has(c.Op) {
		return triNo, false
	}
	if !r.Subject.Contains(c.Subject) {
		return triNo, false
	}
	if r.Object != nil {
		if !c.HasObject || !r.Object.Contains(c.Object) {
			return triNo, false
		}
	}
	out = triYes
	sawFreshNo := false
	if r.ResIDSet {
		if !c.HasObject {
			return triNo, false
		}
		switch {
		case c.ObjID.Known:
			if c.ObjID.V != r.ResID {
				return triNo, false
			}
		default:
			out = triUnknown
		}
	}
	if r.EntrySet {
		if c.EntryFail {
			return triNo, false
		}
		found := false
		for _, e := range c.Entries {
			if e.Path == r.Program && e.Off == r.Entry {
				found = true
				break
			}
		}
		if !found {
			return triNo, false
		}
	} else if r.Program != "" {
		if c.Program != r.Program {
			return triNo, false
		}
	}
	for _, m := range r.Matches {
		t, fresh := w.matchModule(m, st)
		switch t {
		case triNo:
			return triNo, false
		case triUnknown:
			out = triUnknown
			if fresh {
				sawFreshNo = true
			}
		}
	}
	return out, sawFreshNo
}

// matchModule evaluates one extension match module abstractly, mirroring
// the concrete Match methods of modules.go case by case. fresh (meaningful
// only with triUnknown) reports that a fresh-state process definitely does
// not satisfy this module — the unknown arose purely from a STATE key the
// widened dictionary may or may not hold, which a fresh process holds
// unset (and a missing key never matches).
func (w *walker) matchModule(m pf.Match, st *absState) (t tri, fresh bool) {
	c := w.ctx
	switch m := m.(type) {
	case *pf.StateMatch:
		cur, present := st.m[m.Key]
		if !present && !st.unknown {
			return triNo, false // definitely unset: a missing key never matches
		}
		want := w.resolve(m.Cmp)
		if !want.Avail {
			return triNo, false // unresolvable comparison value never matches
		}
		if present && cur.Known && want.Known {
			return triEq(cur.V == want.V, m.Nequal), false
		}
		// !present here means the widened dictionary: unset for a fresh
		// process, so the unmatched branch is fresh-realizable.
		return triUnknown, !present
	case *pf.CompareMatch:
		a, b := w.resolve(m.V1), w.resolve(m.V2)
		if !a.Avail || !b.Avail {
			return triNo, false
		}
		if a.Known && b.Known {
			return triEq(a.V == b.V, m.Nequal), false
		}
		return triUnknown, false
	case *pf.SignalMatch:
		if c.Sig != nil && c.Sig.HasHandler && !c.Sig.Unblockable {
			return triYes, false
		}
		return triNo, false
	case *pf.SyscallArgsMatch:
		var v Val
		if m.Arg == 0 {
			v = c.SyscallNR
		} else {
			i := m.Arg - 1
			if c.SyscallArgsUnknown {
				return triUnknown, false
			}
			if i < 0 || i >= len(c.SyscallArgs) {
				return triNo, false
			}
			v = c.SyscallArgs[i]
		}
		if v.Known {
			return triEq(v.V == m.Equal, false), false
		}
		return triUnknown, false
	case *pf.AdvAccessMatch:
		var adv bool
		if c.HasObject {
			if m.Write {
				adv = w.ev.policy.AdversaryWritable(c.Subject, c.Object)
			} else {
				adv = w.ev.policy.AdversaryReadable(c.Subject, c.Object)
			}
		}
		return triEq(adv == m.Want, false), false
	case *pf.PeerCredMatch:
		if !c.PeerOK {
			return triNo, false
		}
		want := w.resolve(m.UID)
		if !want.Avail {
			return triNo, false
		}
		if c.PeerUID.Known && want.Known {
			return triEq(c.PeerUID.V == want.V, m.Nequal), false
		}
		return triUnknown, false
	case *pf.SockNSMatch:
		return triEq(c.NSOK && c.NS == m.NS, false), false
	case *pf.PortMatch:
		if !c.PortOK {
			return triNo, false
		}
		if c.Port.Known {
			p := uint16(c.Port.V)
			return triEq(p >= m.Min && p <= m.Max, false), false
		}
		return triUnknown, false
	default:
		// An extension module the verifier does not model: widen.
		return triUnknown, false
	}
}

// triEq folds an equality outcome with an optional negation into a tri.
func triEq(eq, negate bool) tri {
	if eq != negate {
		return triYes
	}
	return triNo
}

// resolve is EvalCtx.Resolve in the abstract.
func (w *walker) resolve(v pf.Value) Val {
	c := w.ctx
	switch v.Ref {
	case pf.RefLiteral:
		return Known(v.Lit)
	case pf.RefIno:
		if !c.HasObject {
			return None()
		}
		return c.ObjID
	case pf.RefObjSID:
		if !c.HasObject {
			return None()
		}
		return Known(uint64(c.Object))
	case pf.RefDACOwner:
		if !c.HasObject {
			return None()
		}
		return c.Owner
	case pf.RefTgtDACOwner:
		return c.TgtOwner
	case pf.RefSignal:
		if c.Sig == nil {
			return None()
		}
		return Known(uint64(c.Sig.Signal))
	case pf.RefPeerUID:
		if !c.PeerOK {
			return None()
		}
		return c.PeerUID
	case pf.RefPeerPID:
		if !c.PeerOK {
			return None()
		}
		return c.PeerPID
	case pf.RefPort:
		if !c.PortOK {
			return None()
		}
		return c.Port
	default:
		return None()
	}
}
