package pfverify

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// An Invariant is one declarative property over the abstract request
// space: every point inside its scope must reach only the required
// verdict. The textual form (.inv files) is a block:
//
//	invariant ld-untrusted-library {
//	    require DROP
//	    op FILE_OPEN
//	    subject trusted
//	    object !lib_t !textrel_shlib_t !httpd_modules_t
//	    entry /lib/ld-2.15.so:0x596b
//	}
//
// Scope directives (all optional except op):
//
//	require ACCEPT|DROP          verdict every in-scope point must reach
//	op NAME...                   operations to sweep
//	subject any|trusted|untrusted|<glob...>   subject labels (globs; ! negates the whole set)
//	object  none|any|trusted|untrusted|<glob...>  object labels, or no object
//	entry <path>:<hexoff> ...    entrypoint frames to pin (one point per frame)
//	program <path>               process binary (ExecPath)
//	adv-write yes|no             keep only (subject, object) pairs where the
//	                             MAC policy does / does not let an adversary
//	                             of the subject write the object
//	adv-read yes|no              same for adversary readability
//	owner-diff yes|no            symlink interposition: object is a link whose
//	                             target owner differs / matches the link owner
//	cross-prefix N               keep only pairs whose labels differ in their
//	                             first N bytes (tenant non-interference)
//	sockns fs|abstract|port      pin the socket rendezvous namespace
//	port N[-M]                   pin the socket port (sweeps the bounds)
//	peer-uid N                   pin the peer credential uid
type Invariant struct {
	Name    string
	Require pf.Verdict
	Ops     []pf.Op
	Subject scope
	Object  scope
	// ObjectNone sweeps points with no object (req.Obj == nil).
	ObjectNone bool
	Program    string
	Entries    []pf.Entrypoint

	AdvWrite  opt
	AdvRead   opt
	OwnerDiff opt

	CrossPrefix int

	SockNS  string
	HasPort bool
	PortMin uint16
	PortMax uint16
	PeerUID int
	HasPeer bool

	Pos pf.Pos
}

// opt is an optional yes/no scope directive.
type opt uint8

const (
	optUnset opt = iota
	optYes
	optNo
)

func (o opt) keep(v bool) bool { return o == optUnset || (o == optYes) == v }

// scope selects labels: all, the trusted set, its complement, or globs
// (negated as a whole with a leading "!" on each pattern).
type scope struct {
	Any       bool
	Trusted   bool
	Untrusted bool
	Globs     []string
	Negate    bool
}

func (s scope) match(pol *mac.Policy, tbl *mac.SIDTable, lbl mac.Label) bool {
	switch {
	case s.Trusted || s.Untrusted:
		sid, ok := tbl.Lookup(lbl)
		if !ok {
			return false
		}
		t := pol.Trusted(sid)
		if s.Trusted {
			return t
		}
		return !t
	case len(s.Globs) > 0:
		hit := false
		for _, g := range s.Globs {
			if matchGlob(g, string(lbl)) {
				hit = true
				break
			}
		}
		return hit != s.Negate
	default:
		return true // any
	}
}

// matchGlob matches a '*'/'?' pattern against s.
func matchGlob(pat, s string) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case '*':
			for len(pat) > 0 && pat[0] == '*' {
				pat = pat[1:]
			}
			if pat == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if matchGlob(pat, s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if s == "" {
				return false
			}
			pat, s = pat[1:], s[1:]
		default:
			if s == "" || s[0] != pat[0] {
				return false
			}
			pat, s = pat[1:], s[1:]
		}
	}
	return s == ""
}

// --- parser --------------------------------------------------------------

// ParseInvariants parses the textual invariant form. file names the source
// for positions; src is the file body.
func ParseInvariants(file, src string) ([]*Invariant, error) {
	var invs []*Invariant
	var cur *Invariant
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		pos := pf.Pos{File: file, Line: ln + 1, Col: 1 + leadingSpace(raw)}
		fields := strings.Fields(line)
		if cur == nil {
			if fields[0] != "invariant" || len(fields) < 3 || fields[len(fields)-1] != "{" {
				return nil, fmt.Errorf("%s: expected `invariant <name> {`, got %q", pos, line)
			}
			cur = &Invariant{Name: fields[1], Require: pf.VerdictDrop, Pos: pos}
			continue
		}
		if line == "}" {
			if len(cur.Ops) == 0 {
				return nil, fmt.Errorf("%s: invariant %q has no `op` directive", pos, cur.Name)
			}
			invs = append(invs, cur)
			cur = nil
			continue
		}
		if err := parseDirective(cur, fields, pos); err != nil {
			return nil, err
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: invariant %q: missing closing `}`", file, cur.Name)
	}
	return invs, nil
}

func leadingSpace(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return i
		}
	}
	return 0
}

func parseDirective(inv *Invariant, fields []string, pos pf.Pos) error {
	args := fields[1:]
	switch fields[0] {
	case "require":
		if len(args) != 1 {
			return fmt.Errorf("%s: require takes ACCEPT or DROP", pos)
		}
		switch args[0] {
		case "ACCEPT":
			inv.Require = pf.VerdictAccept
		case "DROP":
			inv.Require = pf.VerdictDrop
		default:
			return fmt.Errorf("%s: require takes ACCEPT or DROP, got %q", pos, args[0])
		}
	case "op":
		if len(args) == 0 {
			return fmt.Errorf("%s: op needs at least one operation name", pos)
		}
		for _, a := range args {
			op, err := pf.ParseOp(a)
			if err != nil {
				return fmt.Errorf("%s: unknown operation %q", pos, a)
			}
			inv.Ops = append(inv.Ops, op)
		}
	case "subject":
		s, _, err := parseScope(args, false, pos)
		if err != nil {
			return err
		}
		inv.Subject = s
	case "object":
		s, none, err := parseScope(args, true, pos)
		if err != nil {
			return err
		}
		inv.Object, inv.ObjectNone = s, none
	case "entry":
		for _, a := range args {
			i := strings.LastIndexByte(a, ':')
			if i < 0 {
				return fmt.Errorf("%s: entry wants <path>:<hexoff>, got %q", pos, a)
			}
			off, err := strconv.ParseUint(strings.TrimPrefix(a[i+1:], "0x"), 16, 64)
			if err != nil {
				return fmt.Errorf("%s: bad entry offset %q: %v", pos, a[i+1:], err)
			}
			inv.Entries = append(inv.Entries, pf.Entrypoint{Path: a[:i], Off: off})
		}
	case "program":
		if len(args) != 1 {
			return fmt.Errorf("%s: program takes one path", pos)
		}
		inv.Program = args[0]
	case "adv-write", "adv-read", "owner-diff":
		o, err := parseYesNo(args, fields[0], pos)
		if err != nil {
			return err
		}
		switch fields[0] {
		case "adv-write":
			inv.AdvWrite = o
		case "adv-read":
			inv.AdvRead = o
		default:
			inv.OwnerDiff = o
		}
	case "cross-prefix":
		if len(args) != 1 {
			return fmt.Errorf("%s: cross-prefix takes one number", pos)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("%s: bad cross-prefix %q", pos, args[0])
		}
		inv.CrossPrefix = n
	case "sockns":
		if len(args) != 1 {
			return fmt.Errorf("%s: sockns takes fs|abstract|port", pos)
		}
		inv.SockNS = args[0]
	case "port":
		if len(args) != 1 {
			return fmt.Errorf("%s: port takes N or N-M", pos)
		}
		lo, hi, ok := parsePortRange(args[0])
		if !ok {
			return fmt.Errorf("%s: bad port %q", pos, args[0])
		}
		inv.HasPort, inv.PortMin, inv.PortMax = true, lo, hi
	case "peer-uid":
		if len(args) != 1 {
			return fmt.Errorf("%s: peer-uid takes one uid", pos)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("%s: bad peer-uid %q", pos, args[0])
		}
		inv.HasPeer, inv.PeerUID = true, n
	default:
		return fmt.Errorf("%s: unknown directive %q", pos, fields[0])
	}
	return nil
}

func parseScope(args []string, allowNone bool, pos pf.Pos) (scope, bool, error) {
	if len(args) == 0 {
		return scope{}, false, fmt.Errorf("%s: scope needs an argument", pos)
	}
	switch args[0] {
	case "any":
		return scope{Any: true}, false, nil
	case "trusted":
		return scope{Trusted: true}, false, nil
	case "untrusted":
		return scope{Untrusted: true}, false, nil
	case "none":
		if !allowNone {
			return scope{}, false, fmt.Errorf("%s: `none` is only valid for object", pos)
		}
		return scope{}, true, nil
	}
	s := scope{}
	for _, a := range args {
		g := a
		if strings.HasPrefix(a, "!") {
			s.Negate = true
			g = a[1:]
		}
		if g == "" {
			return scope{}, false, fmt.Errorf("%s: empty glob in scope", pos)
		}
		s.Globs = append(s.Globs, g)
	}
	return s, false, nil
}

func parseYesNo(args []string, name string, pos pf.Pos) (opt, error) {
	if len(args) != 1 {
		return optUnset, fmt.Errorf("%s: %s takes yes or no", pos, name)
	}
	switch args[0] {
	case "yes":
		return optYes, nil
	case "no":
		return optNo, nil
	}
	return optUnset, fmt.Errorf("%s: %s takes yes or no, got %q", pos, name, args[0])
}

func parsePortRange(s string) (uint16, uint16, bool) {
	lo, hi := s, s
	if i := strings.IndexByte(s, '-'); i > 0 {
		lo, hi = s[:i], s[i+1:]
	}
	a, err1 := strconv.ParseUint(lo, 10, 16)
	b, err2 := strconv.ParseUint(hi, 10, 16)
	if err1 != nil || err2 != nil || a > b {
		return 0, 0, false
	}
	return uint16(a), uint16(b), true
}

// --- checking ------------------------------------------------------------

// A Violation is one in-scope point that reached a forbidden verdict.
type Violation struct {
	Invariant string
	Require   pf.Verdict
	Got       pf.Verdict
	// Definite: the forbidden verdict is reachable along a fork-free path,
	// so a concrete request realizes it; only definite violations carry a
	// replayable witness and gate publishes. Non-definite violations are
	// "potential" — the widened STATE/syscall abstraction allowed the
	// verdict, but no concrete request is proven to reach it.
	Definite bool
	// Rule decided the violating path; nil means the default allow.
	Rule *pf.Rule
	// Ctx is the violating abstract point, fully pinned (the minimal
	// witness): realize it concretely to replay the violation.
	Ctx Ctx
	// Human-readable witness coordinates.
	Subject mac.Label
	Object  mac.Label
}

func (v *Violation) String() string {
	rule := "default-allow"
	if v.Rule != nil {
		rule = "rule"
		if v.Rule.Src.Line > 0 {
			rule = "rule " + v.Rule.Src.String()
		}
	}
	obj := string(v.Object)
	if !v.Ctx.HasObject {
		obj = "<none>"
	}
	ep := ""
	if len(v.Ctx.Entries) > 0 {
		ep = fmt.Sprintf(" entry=%s:0x%x", v.Ctx.Entries[0].Path, v.Ctx.Entries[0].Off)
	}
	kind := "definite"
	if !v.Definite {
		kind = "potential"
	}
	return fmt.Sprintf("invariant %s: %s violation: %s subject=%s object=%s%s got %s (want %s) via %s",
		v.Invariant, kind, v.Ctx.Op, v.Subject, obj, ep, v.Got, v.Require, rule)
}

// InvariantResult is one invariant's sweep outcome.
type InvariantResult struct {
	Invariant  *Invariant
	Points     int
	Holds      bool // no definite violation
	Definitely bool // no violation of any kind (holds even under widening)
	Violations []Violation
	// ViolationCount counts every violating point, including those beyond
	// the stored cap.
	ViolationCount int
}

// Report is a full Check run.
type Report struct {
	Results []InvariantResult
	Points  int
}

// Violated reports whether any invariant has a definite violation.
func (r *Report) Violated() bool {
	for _, res := range r.Results {
		if !res.Holds {
			return true
		}
	}
	return false
}

// Violations flattens every stored violation, definite first.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, res := range r.Results {
		out = append(out, res.Violations...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Definite && !out[j].Definite })
	return out
}

// maxStoredViolations caps witnesses kept per invariant; the count still
// covers every violating point.
const maxStoredViolations = 8

// Check sweeps every invariant's scope against the snapshot. tbl interns
// the label universe the sweep enumerates (use the world's or policy's SID
// table so every label rules and files mention is covered).
func Check(ev *Evaluator, tbl *mac.SIDTable, invs []*Invariant) *Report {
	rep := &Report{}
	labels := tbl.Labels()
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, inv := range invs {
		res := checkOne(ev, tbl, inv, labels)
		rep.Points += res.Points
		rep.Results = append(rep.Results, res)
	}
	return rep
}

func checkOne(ev *Evaluator, tbl *mac.SIDTable, inv *Invariant, labels []mac.Label) InvariantResult {
	res := InvariantResult{Invariant: inv, Holds: true, Definitely: true}
	pol := ev.Policy()

	var subjects []mac.Label
	for _, l := range labels {
		if inv.Subject.match(pol, tbl, l) {
			subjects = append(subjects, l)
		}
	}
	var objects []mac.Label
	if !inv.ObjectNone {
		for _, l := range labels {
			if inv.Object.match(pol, tbl, l) {
				objects = append(objects, l)
			}
		}
	}

	entries := inv.Entries
	sweepEntries := make([][]pf.Entrypoint, 0, len(entries)+1)
	if len(entries) == 0 {
		sweepEntries = append(sweepEntries, nil)
	} else {
		for _, e := range entries {
			sweepEntries = append(sweepEntries, []pf.Entrypoint{e})
		}
	}

	// Object identifiers: one fresh (arbitrary object) plus each pinned
	// --res-id, so identifier-specific rules are covered.
	objIDs := []uint64{ev.FreshResID()}
	objIDs = append(objIDs, ev.PinnedResIDs()...)

	ownerCases := []opt{optUnset}
	switch inv.OwnerDiff {
	case optYes:
		ownerCases = []opt{optYes}
	case optNo:
		ownerCases = []opt{optNo}
	}

	eval := func(c *Ctx, subj, obj mac.Label) {
		res.Points++
		r := ev.Eval(c)
		var bad, definite bool
		var got pf.Verdict
		var rule *pf.Rule
		if inv.Require == pf.VerdictDrop {
			bad, definite, got, rule = r.MayAccept, r.DefiniteAccept, pf.VerdictAccept, r.AcceptRule
		} else {
			bad, definite, got, rule = r.MayDrop, r.DefiniteDrop, pf.VerdictDrop, r.DropRule
		}
		if !bad {
			return
		}
		res.ViolationCount++
		res.Definitely = false
		if definite {
			res.Holds = false
		}
		if len(res.Violations) < maxStoredViolations {
			res.Violations = append(res.Violations, Violation{
				Invariant: inv.Name,
				Require:   inv.Require,
				Got:       got,
				Definite:  definite,
				Rule:      rule,
				Ctx:       *c,
				Subject:   subj,
				Object:    obj,
			})
		}
	}

	sweepObj := objects
	if inv.ObjectNone {
		sweepObj = []mac.Label{""}
	}
	for _, op := range inv.Ops {
		for _, subj := range subjects {
			ssid := tbl.SID(subj)
			for _, obj := range sweepObj {
				if !inv.ObjectNone {
					osid := tbl.SID(obj)
					if !inv.AdvWrite.keep(pol.AdversaryWritable(ssid, osid)) {
						continue
					}
					if !inv.AdvRead.keep(pol.AdversaryReadable(ssid, osid)) {
						continue
					}
					if inv.CrossPrefix > 0 && !crossPrefix(subj, obj, inv.CrossPrefix) {
						continue
					}
				}
				for _, eps := range sweepEntries {
					for oi, oc := range ownerCases {
						for idx, oid := range objIDs {
							if idx > 0 && oi > 0 {
								break // pinned ids only need one owner case
							}
							c := pointCtx(inv, op, ssid, subj, obj, tbl, eps, oc, oid)
							eval(c, subj, obj)
						}
					}
				}
			}
		}
	}
	return res
}

// crossPrefix reports whether two labels differ within their first n bytes
// (tenant prefixes differ).
func crossPrefix(a, b mac.Label, n int) bool {
	as, bs := string(a), string(b)
	if len(as) < n || len(bs) < n {
		return false
	}
	return as[:n] != bs[:n]
}

// pointCtx builds the abstract point for one sweep coordinate. Process
// history (STATE) and the in-flight syscall are left open so proofs cover
// processes with arbitrary pasts; everything else is pinned, which is what
// makes violations replayable.
func pointCtx(inv *Invariant, op pf.Op, ssid mac.SID, subj, obj mac.Label, tbl *mac.SIDTable, eps []pf.Entrypoint, oc opt, oid uint64) *Ctx {
	c := &Ctx{
		Op:                 op,
		Subject:            ssid,
		Program:            inv.Program,
		Entries:            eps,
		StateUnknown:       true,
		SyscallArgsUnknown: true,
		SyscallNR:          Unknown(),
	}
	if c.Program == "" && len(eps) > 0 {
		c.Program = eps[0].Path
	}
	if !inv.ObjectNone {
		c.HasObject = true
		c.Object = tbl.SID(obj)
		c.ObjID = Known(oid)
		c.Owner = KnownInt(0)
		switch oc {
		case optYes:
			c.Owner = KnownInt(1000)
			c.TgtOwner = KnownInt(0)
		case optNo:
			c.TgtOwner = KnownInt(0)
		}
	}
	if op == pf.OpSignalDeliver {
		c.Sig = &pf.SignalInfo{Signal: 15, HasHandler: true}
	}
	if inv.SockNS != "" {
		c.NSOK, c.NS = true, inv.SockNS
	}
	if inv.HasPort {
		c.PortOK = true
		c.Port = Known(uint64(inv.PortMin))
	}
	if inv.HasPeer {
		c.PeerOK = true
		c.PeerUID = KnownInt(inv.PeerUID)
		c.PeerPID = Known(4242)
	}
	return c
}

// --- refinement ----------------------------------------------------------

// A Regression is an invariant the current snapshot satisfies but the
// candidate does not.
type Regression struct {
	Invariant string
	// Violations are the candidate's definite violations (witnesses).
	Violations []Violation
}

// Refines checks publish-time refinement: every invariant the current
// snapshot satisfies (no definite violation) must still hold under the
// candidate. Invariants the current snapshot already violates don't gate —
// a publish can't regress what was never guaranteed.
func Refines(cur, cand *Evaluator, tbl *mac.SIDTable, invs []*Invariant) []Regression {
	curRep := Check(cur, tbl, invs)
	candRep := Check(cand, tbl, invs)
	var regs []Regression
	for i := range curRep.Results {
		if !curRep.Results[i].Holds {
			continue
		}
		cr := &candRep.Results[i]
		if cr.Holds {
			continue
		}
		var wits []Violation
		for _, v := range cr.Violations {
			if v.Definite {
				wits = append(wits, v)
			}
		}
		regs = append(regs, Regression{Invariant: cr.Invariant.Name, Violations: wits})
	}
	return regs
}

// Gate returns a pf.TransactionGated gate that vetoes any publish whose
// candidate chains weaken an invariant the engine's current generation
// satisfies. The gate runs pre-publish under the engine's write lock, so
// FromEngine still observes the current generation while the candidate is
// the gate's chain snapshot.
func Gate(e *pf.Engine, tbl *mac.SIDTable, invs []*Invariant) func(map[string]*pf.Chain) error {
	return func(chains map[string]*pf.Chain) error {
		cur := FromEngine(e)
		cand := NewEvaluator(e.Policy(), chains, e.Config())
		regs := Refines(cur, cand, tbl, invs)
		if len(regs) == 0 {
			return nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "pfverify: publish weakens %d invariant(s):", len(regs))
		for _, reg := range regs {
			fmt.Fprintf(&b, " %s", reg.Invariant)
			if len(reg.Violations) > 0 {
				fmt.Fprintf(&b, " [%s]", reg.Violations[0].String())
			}
		}
		return fmt.Errorf("%s", b.String())
	}
}
