package pfverify

import (
	"math/rand"
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// Differential fuzz: the symbolic evaluator must agree with the concrete
// engine on every fully pinned point (mirroring the analyzer's
// TestAnalyzeUnreachableSoundness discipline), and every definite verdict
// claimed under the widened-state sweep must be realized by a concrete
// fresh-state request — zero false alarms.

var fuzzLabels = []mac.Label{"user_t", "httpd_t", "lib_t", "tmp_t", "etc_t", "shadow_t"}

var fuzzBins = []string{"/bin/sh", "/usr/bin/apache2", "/lib/ld.so"}

var fuzzEntries = []pf.Entrypoint{
	{Path: "/lib/ld.so", Off: 0x100},
	{Path: "/lib/ld.so", Off: 0x200},
	{Path: "/usr/bin/apache2", Off: 0x300},
}

var fuzzOps = []pf.Op{
	pf.OpFileOpen, pf.OpFileRead, pf.OpFileWrite, pf.OpLnkFileRead,
	pf.OpSocketBind, pf.OpSocketConnect, pf.OpSyscallBegin,
}

func fuzzPolicy() *mac.Policy {
	p := mac.NewPolicy(mac.NewSIDTable())
	p.MarkTrusted("httpd_t", "lib_t", "shadow_t")
	p.Allow("httpd_t", "lib_t", mac.ClassFile, mac.PermRead)
	p.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermWrite|mac.PermRead)
	p.Allow("user_t", "etc_t", mac.ClassFile, mac.PermRead)
	return p
}

func randSIDSet(rng *rand.Rand, pol *mac.Policy) *pf.SIDSet {
	n := 1 + rng.Intn(2)
	sids := make([]mac.SID, 0, n)
	for i := 0; i < n; i++ {
		sids = append(sids, sid(pol, fuzzLabels[rng.Intn(len(fuzzLabels))]))
	}
	return pf.NewSIDSet(rng.Intn(4) == 0, sids...)
}

func randValue(rng *rand.Rand) pf.Value {
	switch rng.Intn(4) {
	case 0:
		return pf.Value{Ref: pf.RefDACOwner}
	case 1:
		return pf.Value{Ref: pf.RefTgtDACOwner}
	case 2:
		return pf.Value{Ref: pf.RefIno}
	default:
		return pf.Literal(uint64(rng.Intn(4)))
	}
}

// randRule builds a random rule for chain. Jump targets follow the chain
// DAG input→uc1→uc2 (a jump cycle is not a valid ruleset — the concrete
// engine would loop a real process forever; pfcheck rejects them).
func randRule(rng *rand.Rand, pol *mac.Policy, chain string) *pf.Rule {
	r := &pf.Rule{}
	if rng.Intn(2) == 0 {
		k := 1 + rng.Intn(2)
		ops := make([]pf.Op, 0, k)
		for i := 0; i < k; i++ {
			ops = append(ops, fuzzOps[rng.Intn(len(fuzzOps))])
		}
		r.Ops = pf.NewOpSet(ops...)
	}
	if rng.Intn(2) == 0 {
		r.Subject = randSIDSet(rng, pol)
	}
	if rng.Intn(2) == 0 {
		r.Object = randSIDSet(rng, pol)
	}
	switch rng.Intn(4) {
	case 0:
		e := fuzzEntries[rng.Intn(len(fuzzEntries))]
		r.Program, r.Entry, r.EntrySet = e.Path, e.Off, true
	case 1:
		r.Program = fuzzBins[rng.Intn(len(fuzzBins))]
	}
	if rng.Intn(5) == 0 {
		r.ResID, r.ResIDSet = uint64(1+rng.Intn(5)), true
	}
	for i := rng.Intn(3); i > 0; i-- {
		switch rng.Intn(7) {
		case 0:
			r.Matches = append(r.Matches, &pf.AdvAccessMatch{Write: rng.Intn(2) == 0, Want: rng.Intn(2) == 0})
		case 1:
			r.Matches = append(r.Matches, &pf.CompareMatch{V1: randValue(rng), V2: randValue(rng), Nequal: rng.Intn(2) == 0})
		case 2:
			r.Matches = append(r.Matches, &pf.StateMatch{Key: uint64(rng.Intn(3)), Cmp: pf.Literal(uint64(rng.Intn(3))), Nequal: rng.Intn(2) == 0})
		case 3:
			r.Matches = append(r.Matches, &pf.SyscallArgsMatch{Arg: rng.Intn(3), Equal: uint64(rng.Intn(8))})
		case 4:
			r.Matches = append(r.Matches, &pf.SockNSMatch{NS: []string{"fs", "abstract", "port"}[rng.Intn(3)]})
		case 5:
			lo := uint16(rng.Intn(2000))
			r.Matches = append(r.Matches, &pf.PortMatch{Min: lo, Max: lo + uint16(rng.Intn(2000))})
		case 6:
			r.Matches = append(r.Matches, &pf.PeerCredMatch{UID: pf.Literal(uint64(rng.Intn(2) * 1000)), Nequal: rng.Intn(2) == 0})
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		r.Target = pf.Drop()
	case 3, 4:
		r.Target = pf.Accept()
	case 5, 6:
		switch chain {
		case "uc1":
			r.Target = &pf.JumpTarget{ChainName: "uc2"}
		case "uc2":
			r.Target = pf.Drop()
		default:
			r.Target = &pf.JumpTarget{ChainName: []string{"uc1", "uc2"}[rng.Intn(2)]}
		}
	case 7:
		r.Target = &pf.ReturnTarget{}
	case 8:
		r.Target = &pf.StateTarget{Key: uint64(rng.Intn(3)), Val: randValue(rng)}
	default:
		r.Target = &pf.LogTarget{Prefix: "fz"}
	}
	return r
}

func randEngine(rng *rand.Rand, pol *mac.Policy) *pf.Engine {
	e := pf.New(pol, pf.Optimized())
	if err := e.NewChain("uc1"); err != nil {
		panic(err)
	}
	if err := e.NewChain("uc2"); err != nil {
		panic(err)
	}
	chains := []string{"input", "input", "input", "input", "mangle/input", "syscallbegin", "uc1", "uc2"}
	n := 1 + rng.Intn(24)
	for i := 0; i < n; i++ {
		chain := chains[rng.Intn(len(chains))]
		r := randRule(rng, pol, chain)
		var err error
		if rng.Intn(4) == 0 {
			err = e.Insert(chain, r)
		} else {
			err = e.Append(chain, r)
		}
		if err != nil {
			panic(err)
		}
	}
	return e
}

// randRequest builds a concrete request plus its process double. Each call
// returns a fresh process (fresh STATE dictionary), matching the
// evaluator's fresh-state model.
func randRequest(rng *rand.Rand, pol *mac.Policy, pid int) *pf.Request {
	proc := newTProc(pid, sid(pol, fuzzLabels[rng.Intn(len(fuzzLabels))]), fuzzBins[rng.Intn(len(fuzzBins))])
	switch rng.Intn(4) {
	case 0: // no deliberate entry; PC wherever the zero stack points
	case 1:
		e := fuzzEntries[rng.Intn(len(fuzzEntries))]
		proc.at(e.Path, e.Off)
	default:
		outer := fuzzEntries[rng.Intn(len(fuzzEntries))]
		inner := fuzzEntries[rng.Intn(len(fuzzEntries))]
		proc.call(outer.Path, outer.Off)
		proc.at(inner.Path, inner.Off)
	}
	op := fuzzOps[rng.Intn(len(fuzzOps))]
	req := &pf.Request{Proc: proc, Op: op, SyscallNR: rng.Intn(16)}
	for i := rng.Intn(3); i > 0; i-- {
		req.SyscallArgs = append(req.SyscallArgs, uint64(rng.Intn(8)))
	}
	if rng.Intn(8) != 0 {
		base := tRes{
			sid:   sid(pol, fuzzLabels[rng.Intn(len(fuzzLabels))]),
			id:    uint64(1 + rng.Intn(6)),
			owner: rng.Intn(2) * 1000,
		}
		if rng.Intn(3) == 0 {
			base.tgtOwner, base.tgtOK = rng.Intn(2)*1000, true
		}
		if op == pf.OpSocketBind || op == pf.OpSocketConnect {
			sr := &tSockRes{tRes: base}
			if rng.Intn(2) == 0 {
				sr.ns, sr.nsOK = []string{"fs", "abstract", "port"}[rng.Intn(3)], true
			}
			if rng.Intn(2) == 0 {
				sr.port, sr.portOK = uint16(rng.Intn(4000)), true
			}
			if rng.Intn(2) == 0 {
				sr.peerPID, sr.peerUID, sr.peerOK = 9, rng.Intn(2)*1000, true
			}
			req.Obj = sr
		} else {
			req.Obj = &base
		}
	}
	return req
}

func TestDifferentialSymbolicConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	pol := fuzzPolicy()
	pid := 1
	for round := 0; round < 60; round++ {
		e := randEngine(rng, pol)
		ev := FromEngine(e)
		for i := 0; i < 10; i++ {
			req := randRequest(rng, pol, pid)
			pid++
			c := ctxFor(pol, req)
			r := ev.Eval(c)
			if !r.Exact {
				t.Fatalf("round %d req %d: fully pinned point not exact: %+v", round, i, r)
			}
			got := e.Filter(req)
			if r.Verdict != got {
				t.Fatalf("round %d req %d: symbolic %v, concrete %v (op=%v subj=%v)",
					round, i, r.Verdict, got, req.Op, req.Proc.SubjectSID())
			}
		}
	}
}

// TestDefiniteClaimsRealize drives the widened-state sweep over random
// rulesets and replays every definite claim concretely: a definite verdict
// that a fresh-state process does not reproduce is a verifier bug (the
// zero-false-alarm property witness replay relies on).
func TestDefiniteClaimsRealize(t *testing.T) {
	rng := rand.New(rand.NewSource(0xface))
	pol := fuzzPolicy()
	entryChoices := [][]pf.Entrypoint{nil, {fuzzEntries[0]}, {fuzzEntries[2]}}
	checked, skipped := 0, 0
	pid := 1
	for round := 0; round < 40; round++ {
		e := randEngine(rng, pol)
		ev := FromEngine(e)
		freshID := ev.FreshResID()
		for _, op := range []pf.Op{pf.OpFileOpen, pf.OpLnkFileRead, pf.OpSocketBind, pf.OpSyscallBegin} {
			for _, subj := range fuzzLabels {
				for _, obj := range fuzzLabels {
					for _, eps := range entryChoices {
						prog := "/bin/sh"
						if len(eps) > 0 {
							prog = eps[0].Path
						}
						c := &Ctx{
							Op:      op,
							Subject: sid(pol, subj),
							Program: prog,
							Entries: eps,

							HasObject: true,
							Object:    sid(pol, obj),
							ObjID:     Known(freshID),
							Owner:     KnownInt(0),

							StateUnknown:       true,
							SyscallArgsUnknown: true,
						}
						r := ev.Eval(c)
						if r.DefiniteAccept && r.DefiniteDrop {
							t.Fatalf("round %d: both verdicts definite for one point: %+v", round, r)
						}
						if !r.DefiniteAccept && !r.DefiniteDrop {
							continue
						}
						want := pf.VerdictAccept
						if r.DefiniteDrop {
							want = pf.VerdictDrop
						}

						// Realize the point with a fresh process.
						proc := newTProc(pid, c.Subject, prog)
						pid++
						if len(eps) > 0 {
							proc.at(eps[0].Path, eps[0].Off)
						}
						req := &pf.Request{
							Proc: proc, Op: op, SyscallNR: 3,
							Obj: &tRes{sid: c.Object, id: freshID, owner: 0},
						}
						if got := probeEntries(pol, req); !entriesEqual(got, eps) {
							skipped++
							continue
						}
						if got := e.Filter(req); got != want {
							t.Fatalf("round %d: definite %v not realized, concrete %v (op=%v subj=%s obj=%s eps=%v)",
								round, want, got, op, subj, obj, eps)
						}
						checked++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no definite claims checked")
	}
	if skipped > checked {
		t.Fatalf("too many unrealizable points: %d skipped vs %d checked", skipped, checked)
	}
}

func entriesEqual(a, b []pf.Entrypoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
