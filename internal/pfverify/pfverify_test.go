package pfverify

import (
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// agree asserts the symbolic evaluator reaches exactly the engine's
// verdict for a fully pinned request.
func agree(t *testing.T, e *pf.Engine, pol *mac.Policy, req *pf.Request, label string) {
	t.Helper()
	c := ctxFor(pol, req)
	ev := FromEngine(e)
	r := ev.Eval(c)
	if !r.Exact {
		t.Fatalf("%s: fully pinned point not exact: %+v", label, r)
	}
	got := e.Filter(req)
	if r.Verdict != got {
		t.Fatalf("%s: symbolic %v, concrete %v", label, r.Verdict, got)
	}
}

func TestEmptyRulesetAccepts(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	proc := newTProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	req := &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "lib_t"), id: 7}}
	agree(t, e, pol, req, "empty")
}

func TestObjectLabelAndOp(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	tmp := sid(pol, "tmp_t")
	if err := e.Append("input", &pf.Rule{
		Object: pf.NewSIDSet(false, tmp),
		Ops:    pf.NewOpSet(pf.OpLnkFileRead),
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	link := &tRes{sid: tmp, id: 3, class: mac.ClassLnkFile}
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpLnkFileRead, Obj: link}, "drop")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: link}, "other-op")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpLnkFileRead, Obj: &tRes{sid: sid(pol, "etc_t"), id: 4}}, "other-label")
}

func TestEntrypointOrderingUnderEptChains(t *testing.T) {
	// Under EptChains, generic input rules run before entrypoint-indexed
	// rules regardless of install order; the evaluator must mirror that.
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	lib := sid(pol, "lib_t")
	// Entrypoint guard installed FIRST...
	if err := e.Append("input", &pf.Rule{
		Program: "/lib/ld.so", Entry: 0x100, EntrySet: true,
		Ops:    pf.NewOpSet(pf.OpFileOpen),
		Object: pf.NewSIDSet(true, lib),
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	// ...generic accept installed SECOND still preempts it.
	if err := e.Append("input", &pf.Rule{
		Ops:    pf.NewOpSet(pf.OpFileOpen),
		Object: pf.NewSIDSet(false, sid(pol, "tmp_t")),
		Target: pf.Accept(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	proc.at("/lib/ld.so", 0x100)
	tmp := &tRes{sid: sid(pol, "tmp_t"), id: 9}
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: tmp}, "generic-first")

	proc2 := newTProc(2, sid(pol, "httpd_t"), "/usr/bin/apache2")
	proc2.at("/lib/ld.so", 0x100)
	agree(t, e, pol, &pf.Request{Proc: proc2, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "etc_t"), id: 10}}, "ept-drop")

	proc3 := newTProc(3, sid(pol, "httpd_t"), "/usr/bin/apache2")
	proc3.at("/lib/ld.so", 0x999)
	agree(t, e, pol, &pf.Request{Proc: proc3, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "etc_t"), id: 11}}, "wrong-entry")
}

func TestJumpReturnAndUserChain(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.NewChain("uc"); err != nil {
		t.Fatal(err)
	}
	userT := sid(pol, "user_t")
	if err := e.Append("input", &pf.Rule{
		Subject: pf.NewSIDSet(false, userT),
		Target:  &pf.JumpTarget{ChainName: "uc"},
	}); err != nil {
		t.Fatal(err)
	}
	// uc: RETURN for tmp_t objects, DROP otherwise.
	if err := e.Append("uc", &pf.Rule{
		Object: pf.NewSIDSet(false, sid(pol, "tmp_t")),
		Target: &pf.ReturnTarget{},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("uc", &pf.Rule{Target: pf.Drop()}); err != nil {
		t.Fatal(err)
	}
	// After the jump site: a rule that should still run for the RETURN path.
	if err := e.Append("input", &pf.Rule{
		Object: pf.NewSIDSet(false, sid(pol, "tmp_t")),
		Ops:    pf.NewOpSet(pf.OpFileWrite),
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, userT, "/bin/sh")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 1}}, "return-path")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileWrite, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 1}}, "post-return-rule")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "etc_t"), id: 2}}, "uc-drop")

	other := newTProc(2, sid(pol, "httpd_t"), "/usr/bin/apache2")
	agree(t, e, pol, &pf.Request{Proc: other, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "etc_t"), id: 2}}, "no-jump")
}

func TestStateExactWithFreshProcess(t *testing.T) {
	// STATE set + match with literal values is fully decidable from a
	// fresh dictionary: the walk must not fork.
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.Append("input", &pf.Rule{
		Ops:    pf.NewOpSet(pf.OpFileOpen),
		Target: &pf.StateTarget{Key: 0xbeef, Val: pf.Literal(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpFileOpen),
		Matches: []pf.Match{&pf.StateMatch{Key: 0xbeef, Cmp: pf.Literal(1)}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	// A match on a never-set key: definitely absent, never matches.
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpFileWrite),
		Matches: []pf.Match{&pf.StateMatch{Key: 0xd00d, Cmp: pf.Literal(0)}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "user_t"), "/bin/sh")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 1}}, "state-set-then-match")

	proc2 := newTProc(2, sid(pol, "user_t"), "/bin/sh")
	agree(t, e, pol, &pf.Request{Proc: proc2, Op: pf.OpFileWrite, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 1}}, "state-absent")
}

func TestStateUnknownForksAndWidens(t *testing.T) {
	// With an unknown prior dictionary, a STATE-guarded DROP must surface
	// as MayDrop but not DefiniteDrop.
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpFileOpen),
		Matches: []pf.Match{&pf.StateMatch{Key: 0xbeef, Cmp: pf.Literal(1)}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	ev := FromEngine(e)
	c := &Ctx{
		Op:           pf.OpFileOpen,
		Subject:      sid(pol, "user_t"),
		HasObject:    true,
		Object:       sid(pol, "tmp_t"),
		StateUnknown: true,
	}
	r := ev.Eval(c)
	if !r.MayDrop || !r.MayAccept {
		t.Fatalf("want both verdicts reachable, got %+v", r)
	}
	if r.DefiniteDrop {
		t.Fatalf("drop requires unknown state; must not be definite: %+v", r)
	}
	if !r.DefiniteAccept {
		t.Fatalf("accept path (key unset branch) is concrete for a fresh process: %+v", r)
	}
	if r.Exact {
		t.Fatal("forked walk reported exact")
	}
}

func TestAdvAccessAndCompareOwner(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	// Drop adversary-writable objects at any entry (attack-class rule).
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpFileOpen),
		Matches: []pf.Match{&pf.AdvAccessMatch{Write: true, Want: true}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	// safe_open: owner mismatch through a link.
	if err := e.Append("input", &pf.Rule{
		Ops: pf.NewOpSet(pf.OpLnkFileRead),
		Matches: []pf.Match{&pf.CompareMatch{
			V1: pf.Value{Ref: pf.RefDACOwner}, V2: pf.Value{Ref: pf.RefTgtDACOwner}, Nequal: true,
		}},
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	httpd := newTProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	// user_t can write tmp_t in testPolicy, so tmp_t is adversary-writable
	// for httpd_t.
	agree(t, e, pol, &pf.Request{Proc: httpd, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 5}}, "adv-writable")
	agree(t, e, pol, &pf.Request{Proc: httpd, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "lib_t"), id: 6}}, "not-adv-writable")
	agree(t, e, pol, &pf.Request{Proc: httpd, Op: pf.OpLnkFileRead,
		Obj: &tRes{sid: sid(pol, "tmp_t"), id: 7, owner: 1000, tgtOwner: 0, tgtOK: true}}, "owner-diff")
	agree(t, e, pol, &pf.Request{Proc: httpd, Op: pf.OpLnkFileRead,
		Obj: &tRes{sid: sid(pol, "tmp_t"), id: 8, owner: 0, tgtOwner: 0, tgtOK: true}}, "owner-same")
	agree(t, e, pol, &pf.Request{Proc: httpd, Op: pf.OpLnkFileRead,
		Obj: &tRes{sid: sid(pol, "tmp_t"), id: 9}}, "not-a-link")
}

func TestResIDAndSyscallArgs(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.Append("input", &pf.Rule{
		Ops: pf.NewOpSet(pf.OpFileOpen), ResID: 42, ResIDSet: true,
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("syscallbegin", &pf.Rule{
		Matches: []pf.Match{&pf.SyscallArgsMatch{Arg: 0, Equal: 11}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "user_t"), "/bin/sh")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 42}}, "res-id-hit")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 43}}, "res-id-miss")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSyscallBegin, SyscallNR: 11}, "nr-hit")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSyscallBegin, SyscallNR: 12}, "nr-miss")
}

func TestSocketContext(t *testing.T) {
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.Append("input", &pf.Rule{
		Ops: pf.NewOpSet(pf.OpSocketBind),
		Matches: []pf.Match{
			&pf.SockNSMatch{NS: "port"},
			&pf.PortMatch{Min: 1, Max: 1023},
		},
		Target: pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpSocketConnect),
		Matches: []pf.Match{&pf.PeerCredMatch{UID: pf.Literal(0), Nequal: true}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "user_t"), "/bin/sh")
	low := &tSockRes{tRes: tRes{sid: sid(pol, "tmp_t"), id: 1}, ns: "port", nsOK: true, port: 80, portOK: true}
	high := &tSockRes{tRes: tRes{sid: sid(pol, "tmp_t"), id: 2}, ns: "port", nsOK: true, port: 8080, portOK: true}
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSocketBind, Obj: low}, "low-port")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSocketBind, Obj: high}, "high-port")

	peerRoot := &tSockRes{tRes: tRes{sid: sid(pol, "tmp_t"), id: 3}, peerUID: 0, peerPID: 9, peerOK: true}
	peerUser := &tSockRes{tRes: tRes{sid: sid(pol, "tmp_t"), id: 4}, peerUID: 1000, peerPID: 9, peerOK: true}
	noPeer := &tSockRes{tRes: tRes{sid: sid(pol, "tmp_t"), id: 5}}
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSocketConnect, Obj: peerRoot}, "peer-root")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSocketConnect, Obj: peerUser}, "peer-user")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpSocketConnect, Obj: noPeer}, "no-peer")
}

func TestMangleRunsFirst(t *testing.T) {
	// A STATE set in mangle/input must be visible to input-chain matches
	// in the same request.
	pol := testPolicy()
	e := pf.New(pol, pf.Optimized())
	if err := e.Append("mangle/input", &pf.Rule{
		Ops:    pf.NewOpSet(pf.OpFileOpen),
		Target: &pf.StateTarget{Key: 7, Val: pf.Literal(3)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &pf.Rule{
		Ops:     pf.NewOpSet(pf.OpFileOpen),
		Matches: []pf.Match{&pf.StateMatch{Key: 7, Cmp: pf.Literal(3)}},
		Target:  pf.Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	proc := newTProc(1, sid(pol, "user_t"), "/bin/sh")
	agree(t, e, pol, &pf.Request{Proc: proc, Op: pf.OpFileOpen, Obj: &tRes{sid: sid(pol, "tmp_t"), id: 1}}, "mangle-state")
}
