package pfverify

import (
	"errors"
	"fmt"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// ReplayResult is the concrete outcome of materializing one violation
// witness in a real kernel/vfs/pf world.
type ReplayResult struct {
	// Reproduced: the concrete request reached exactly the verdict the
	// verifier reported. A definite violation that fails to reproduce is a
	// verifier bug (enforced by the differential fuzz test).
	Reproduced bool
	Verdict    pf.Verdict
	// Skipped: the witness's operation or context cannot be driven through
	// the syscall surface (e.g. a pinned inode number); Reason says why.
	Skipped bool
	Reason  string
	Err     error
}

// Replay materializes a definite violation in a fresh world — the object
// file with the witness's label and owner(s), a process with the witness's
// subject label, binary, and entrypoint frames — installs the ruleset
// (pftables source lines), and drives the access through the real syscall
// path. MAC enforcement is left off so the firewall verdict alone decides
// the outcome, mirroring what the symbolic sweep models.
func Replay(v *Violation, rules []string) ReplayResult {
	if !v.Definite {
		return ReplayResult{Skipped: true, Reason: "potential violation (widened path); no concrete witness"}
	}
	switch v.Ctx.Op {
	case pf.OpFileOpen, pf.OpLnkFileRead:
	default:
		return ReplayResult{Skipped: true, Reason: fmt.Sprintf("operation %s has no replay driver", v.Ctx.Op)}
	}
	if !v.Ctx.HasObject {
		return ReplayResult{Skipped: true, Reason: "witness has no object"}
	}

	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(rules); err != nil {
		return ReplayResult{Err: fmt.Errorf("install ruleset: %w", err)}
	}

	path, err := materializeObject(w, v)
	if err != nil {
		return ReplayResult{Err: err}
	}

	p, err := witnessProc(w, v)
	if err != nil {
		return ReplayResult{Err: err}
	}

	fd, err := p.Open(path, kernel.O_RDONLY, 0)
	var got pf.Verdict
	switch {
	case err == nil:
		p.Close(fd)
		got = pf.VerdictAccept
	case errors.Is(err, kernel.ErrPFDenied):
		got = pf.VerdictDrop
	default:
		return ReplayResult{Err: fmt.Errorf("replay open: %w", err)}
	}
	return ReplayResult{Reproduced: got == v.Got, Verdict: got}
}

// materializeObject creates the witness object: a plain file carrying the
// witness's label and DAC owner, or — when the point pins a symlink-target
// owner (owner-diff scope) — a symlink with the witness's label over a
// target file owned by the pinned target owner.
func materializeObject(w *programs.World, v *Violation) (string, error) {
	fs := w.K.FS
	dir := fs.MustPath("/witness")
	owner := 0
	if v.Ctx.Owner.Known {
		owner = int(int64(v.Ctx.Owner.V))
	}
	if v.Ctx.TgtOwner.Avail {
		tgtOwner := 0
		if v.Ctx.TgtOwner.Known {
			tgtOwner = int(int64(v.Ctx.TgtOwner.V))
		}
		if _, err := fs.CreateAt(dir, "target", "/witness/target", vfs.CreateOpts{
			Mode: 0o644, UID: tgtOwner,
		}); err != nil {
			return "", fmt.Errorf("materialize target: %w", err)
		}
		if _, err := fs.CreateAt(dir, "obj", "/witness/obj", vfs.CreateOpts{
			Type: vfs.TypeSymlink, Target: "/witness/target",
			UID: owner, Label: v.Object,
		}); err != nil {
			return "", fmt.Errorf("materialize link: %w", err)
		}
		return "/witness/obj", nil
	}
	if _, err := fs.CreateAt(dir, "obj", "/witness/obj", vfs.CreateOpts{
		Mode: 0o644, UID: owner, Label: v.Object,
	}); err != nil {
		return "", fmt.Errorf("materialize object: %w", err)
	}
	return "/witness/obj", nil
}

// witnessProc builds the witness subject: a process with the witness's
// label and binary, its entrypoint frames pushed exactly as the abstract
// point pins them.
func witnessProc(w *programs.World, v *Violation) (*kernel.Proc, error) {
	exec := v.Ctx.Program
	if exec == "" {
		exec = programs.BinSh
	}
	p := w.NewProc(kernel.ProcSpec{UID: 0, Label: v.Subject, Exec: exec, Cwd: "/"})
	// Entries are in unwind (innermost-first) order: outer entries become
	// call frames, the innermost becomes the syscall site (the PC).
	for i := len(v.Ctx.Entries) - 1; i >= 1; i-- {
		e := v.Ctx.Entries[i]
		if _, ok := p.AddrSpace().FindByPath(e.Path); !ok {
			p.AddrSpace().Map(e.Path, 0)
		}
		if err := p.PushFrame(e.Path, e.Off); err != nil {
			return nil, fmt.Errorf("witness frame %s:0x%x: %w", e.Path, e.Off, err)
		}
	}
	if len(v.Ctx.Entries) > 0 {
		e := v.Ctx.Entries[0]
		if _, ok := p.AddrSpace().FindByPath(e.Path); !ok {
			p.AddrSpace().Map(e.Path, 0)
		}
		if err := p.SyscallSite(e.Path, e.Off); err != nil {
			return nil, fmt.Errorf("witness site %s:0x%x: %w", e.Path, e.Off, err)
		}
	}
	return p, nil
}

// ReplayAll replays every definite violation of a report against the same
// ruleset source, returning (reproduced, failed, skipped) counts; failures
// carry their violation for diagnostics.
func ReplayAll(rep *Report, rules []string) (reproduced, skipped int, failures []Violation) {
	for _, v := range rep.Violations() {
		if !v.Definite {
			continue
		}
		r := Replay(&v, rules)
		switch {
		case r.Skipped:
			skipped++
		case r.Reproduced:
			reproduced++
		default:
			failures = append(failures, v)
		}
	}
	return reproduced, skipped, failures
}
