package pfverify

import (
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/ustack"
)

// Test doubles mirroring pf's internal fakes, built on the exported
// ustack/pf surface so the differential tests can drive a real engine.

type tProc struct {
	pid   int
	sid   mac.SID
	exec  string
	mem   *ustack.Memory
	stack *ustack.Stack
	as    *ustack.AddressSpace
	ps    *pf.ProcState
}

func newTProc(pid int, sid mac.SID, exec string) *tProc {
	mem := ustack.NewMemory(4096)
	return &tProc{
		pid: pid, sid: sid, exec: exec,
		mem:   mem,
		stack: ustack.NewStack(mem, 1000),
		as:    ustack.NewAddressSpace(uint64(pid)),
		ps:    pf.NewProcState(),
	}
}

func (p *tProc) PID() int                        { return p.pid }
func (p *tProc) SubjectSID() mac.SID             { return p.sid }
func (p *tProc) ExecPath() string                { return p.exec }
func (p *tProc) UserRegs() ustack.Regs           { return p.stack.Regs }
func (p *tProc) UserMemory() *ustack.Memory      { return p.mem }
func (p *tProc) AddrSpace() *ustack.AddressSpace { return p.as }
func (p *tProc) Interp() (ustack.Lang, uint64)   { return ustack.LangNative, 0 }
func (p *tProc) StackGen() uint64                { return p.mem.Gen() + p.stack.Gen() }
func (p *tProc) PFState() *pf.ProcState          { return p.ps }

// mapping returns the base of path's mapping, mapping it on first use.
func (p *tProc) mapping(path string) uint64 {
	if m, ok := p.as.FindByPath(path); ok {
		return m.Base
	}
	return p.as.Map(path, 0).Base
}

// at positions the PC at an entrypoint (the innermost frame).
func (p *tProc) at(path string, off uint64) { p.stack.SetPC(p.mapping(path) + off) }

// call pushes an outer call frame at an entrypoint.
func (p *tProc) call(path string, off uint64) { p.stack.Call(p.mapping(path) + off) }

type tRes struct {
	sid      mac.SID
	id       uint64
	path     string
	class    mac.Class
	owner    int
	tgtOwner int
	tgtOK    bool
}

func (r *tRes) SID() mac.SID                    { return r.sid }
func (r *tRes) ID() uint64                      { return r.id }
func (r *tRes) Path() string                    { return r.path }
func (r *tRes) Class() mac.Class                { return r.class }
func (r *tRes) OwnerUID() int                   { return r.owner }
func (r *tRes) LinkTargetOwnerUID() (int, bool) { return r.tgtOwner, r.tgtOK }

// tSockRes extends tRes with the socket endpoint context.
type tSockRes struct {
	tRes
	ns      string
	nsOK    bool
	port    uint16
	portOK  bool
	peerPID int
	peerUID int
	peerGID int
	peerOK  bool
}

func (r *tSockRes) SockNS() (string, bool)          { return r.ns, r.nsOK }
func (r *tSockRes) SockPort() (uint16, bool)        { return r.port, r.portOK }
func (r *tSockRes) PeerCred() (int, int, int, bool) { return r.peerPID, r.peerUID, r.peerGID, r.peerOK }

// probeEntries learns the exact entrypoint list the engine would unwind for
// req's process by running it through a throwaway engine whose only rule is
// an unconditional LOG in mangle/input.
func probeEntries(pol *mac.Policy, req *pf.Request) []pf.Entrypoint {
	probe := pf.New(pol, pf.Optimized())
	if err := probe.Append("mangle/input", &pf.Rule{Target: &pf.LogTarget{Prefix: "probe"}}); err != nil {
		panic(err)
	}
	var entries []pf.Entrypoint
	probe.Logger = func(rec pf.LogRecord) { entries = rec.Entrypoints }
	probe.Filter(req)
	return entries
}

// ctxFor translates a concrete request into the exact abstract point the
// verifier should agree with the engine on: every dimension pinned.
func ctxFor(pol *mac.Policy, req *pf.Request) *Ctx {
	c := &Ctx{
		Op:        req.Op,
		Subject:   req.Proc.SubjectSID(),
		Program:   req.Proc.ExecPath(),
		Entries:   probeEntries(pol, req),
		SyscallNR: Known(uint64(req.SyscallNR)),
		Sig:       req.Sig,
	}
	for _, a := range req.SyscallArgs {
		c.SyscallArgs = append(c.SyscallArgs, Known(a))
	}
	if req.Obj != nil {
		c.HasObject = true
		c.Object = req.Obj.SID()
		c.ObjID = Known(req.Obj.ID())
		c.Owner = KnownInt(req.Obj.OwnerUID())
		if tgt, ok := req.Obj.LinkTargetOwnerUID(); ok {
			c.TgtOwner = KnownInt(tgt)
		}
		if sr, ok := req.Obj.(pf.SockResource); ok {
			if ns, ok := sr.SockNS(); ok {
				c.NSOK, c.NS = true, ns
			}
			if port, ok := sr.SockPort(); ok {
				c.PortOK, c.Port = true, Known(uint64(port))
			}
			if pid, uid, _, ok := sr.PeerCred(); ok {
				c.PeerOK = true
				c.PeerUID, c.PeerPID = KnownInt(uid), KnownInt(pid)
			}
		}
	}
	return c
}

func testPolicy() *mac.Policy {
	p := mac.NewPolicy(mac.NewSIDTable())
	p.MarkTrusted("httpd_t", "lib_t", "shadow_t")
	p.Allow("httpd_t", "lib_t", mac.ClassFile, mac.PermRead)
	p.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermWrite|mac.PermRead)
	return p
}

func sid(p *mac.Policy, l mac.Label) mac.SID { return p.SIDs().SID(l) }
