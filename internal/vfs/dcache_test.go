package vfs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// resolveNode resolves path and returns the final inode (nil on error).
func resolveNode(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	res, err := fs.Resolve(nil, path, ResolveOpts{FollowFinal: true}, nil)
	if err != nil {
		t.Fatalf("resolve %s: %v", path, err)
	}
	return res.Node
}

// TestDcacheHitsOnRepeatedResolution verifies the cache actually serves the
// hot path: resolving the same path twice must hit on the second walk.
func TestDcacheHitsOnRepeatedResolution(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{Mode: 0o644})

	resolveNode(t, fs, "/etc/passwd") // fill
	before := fs.DcacheHits.Load()
	resolveNode(t, fs, "/etc/passwd")
	if hits := fs.DcacheHits.Load() - before; hits < 2 {
		t.Errorf("second resolution produced %d dcache hits, want >= 2 (etc + passwd)", hits)
	}
}

// TestDcacheRenameInvalidation is the TOCTTOU-shaped correctness property:
// once a rename completes, no later resolution may return the old binding,
// even though earlier resolutions populated the dentry cache.
func TestDcacheRenameInvalidation(t *testing.T) {
	fs := newTestFS()
	d := fs.MustPath("/d")
	old := mustCreate(t, fs, d, "f", "/d/f", CreateOpts{Mode: 0o644})
	evil := mustCreate(t, fs, d, "g", "/d/g", CreateOpts{Mode: 0o644})

	if got := resolveNode(t, fs, "/d/f"); got != old {
		t.Fatalf("pre-rename resolution = ino %d, want %d", got.Ino, old.Ino)
	}
	// The adversary's flip: rename g over f (atomic replace).
	if err := fs.Rename(d, "g", d, "f"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if got := resolveNode(t, fs, "/d/f"); got != evil {
		t.Fatalf("post-rename resolution returned stale dentry (ino %d, want %d)", got.Ino, evil.Ino)
	}

	// Unlink must invalidate too.
	if err := fs.Unlink(d, "f"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if _, err := fs.Resolve(nil, "/d/f", ResolveOpts{FollowFinal: true}, nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("post-unlink resolve err = %v, want ErrNotExist", err)
	}

	// Negative dentries must be invalidated by creation.
	fresh := mustCreate(t, fs, d, "f", "/d/f", CreateOpts{Mode: 0o644})
	if got := resolveNode(t, fs, "/d/f"); got != fresh {
		t.Fatalf("post-create resolution returned stale negative dentry")
	}
}

// TestDcacheSymlinkReplacement covers the symlink-flip variant: replacing a
// symlink (unlink + re-create) must redirect subsequent resolutions.
func TestDcacheSymlinkReplacement(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	tmp := fs.MustPath("/tmp")
	safe := mustCreate(t, fs, etc, "real", "/etc/real", CreateOpts{Mode: 0o644})
	trap := mustCreate(t, fs, tmp, "trap", "/tmp/trap", CreateOpts{Mode: 0o644})
	mustCreate(t, fs, tmp, "ln", "/tmp/ln", CreateOpts{Type: TypeSymlink, Target: "/etc/real"})

	if got := resolveNode(t, fs, "/tmp/ln"); got != safe {
		t.Fatalf("symlink resolved to ino %d, want %d", got.Ino, safe.Ino)
	}
	if err := fs.Unlink(tmp, "ln"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, tmp, "ln", "/tmp/ln", CreateOpts{Type: TypeSymlink, Target: "/tmp/trap"})
	if got := resolveNode(t, fs, "/tmp/ln"); got != trap {
		t.Fatalf("flipped symlink resolved to stale target (ino %d, want %d)", got.Ino, trap.Ino)
	}
}

// TestDcacheConcurrentRenameNeverStale races resolvers against a renamer:
// every resolution must observe one of the two inodes that legitimately
// carried the name at some point during the run — never a third value —
// and once the renamer stops, resolution must agree with the authoritative
// (locked) lookup. Run under -race this also proves the lock-free hit path
// is data-race free against concurrent namespace mutation.
func TestDcacheConcurrentRenameNeverStale(t *testing.T) {
	fs := newTestFS()
	d := fs.MustPath("/d")
	a := mustCreate(t, fs, d, "a", "/d/a", CreateOpts{Mode: 0o644})
	b := mustCreate(t, fs, d, "b", "/d/b", CreateOpts{Mode: 0o644})
	// "cur" flips between inode a and inode b via atomic rename-over.
	if err := fs.Link(d, "cur", a); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	renamerDone := make(chan struct{})
	go func() {
		defer close(renamerDone)
		for i := 0; !stop.Load(); i++ {
			next := a
			if i%2 == 1 {
				next = b
			}
			// Link under a scratch name, then rename-over: "cur" atomically
			// flips between inode a and inode b, and always exists.
			if err := fs.Link(d, "spare", next); err != nil {
				t.Errorf("link: %v", err)
				return
			}
			if err := fs.Rename(d, "spare", d, "cur"); err != nil {
				t.Errorf("rename: %v", err)
				return
			}
		}
	}()

	const resolvers = 4
	var wg sync.WaitGroup
	wg.Add(resolvers)
	for r := 0; r < resolvers; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				res, err := fs.Resolve(nil, "/d/cur", ResolveOpts{FollowFinal: true}, nil)
				if err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				if res.Node != a && res.Node != b {
					t.Errorf("resolution returned inode %d, not one of the two valid bindings", res.Node.Ino)
					return
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	<-renamerDone

	want, ok := fs.Lookup(d, "cur")
	if !ok {
		t.Fatal("cur vanished")
	}
	if got := resolveNode(t, fs, "/d/cur"); got != want {
		t.Fatalf("quiescent resolution (ino %d) disagrees with authoritative lookup (ino %d): stale dentry", got.Ino, want.Ino)
	}
}
