// Package vfs implements the filesystem substrate of the simulated kernel:
// inodes, directories, symbolic links, hard links, UNIX discretionary access
// control, and — crucially for the Process Firewall paper — pathname
// resolution performed component by component with a mediation callback per
// resolved object, mirroring how Linux Security Module hooks observe every
// resource a system call touches (paper Sections 4 and 5.1).
//
// Two properties of real UNIX filesystems that resource access attacks
// exploit are reproduced faithfully:
//
//   - Namespace bindings are mutable between system calls, enabling
//     TOCTTOU races (paper Section 2.1, Figure 1a).
//   - Inode numbers are recycled once the last link and last open file
//     reference are gone, enabling Olaf Kirch's "cryogenic sleep" attack
//     where a check/use pair passes because a recycled inode reuses the
//     number the check observed.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pfirewall/internal/mac"
)

// Ino is an inode number.
type Ino uint64

// FileType distinguishes inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeRegular FileType = iota + 1
	TypeDir
	TypeSymlink
	TypeSocket
	TypeFifo
)

// String returns a one-letter name similar to ls(1) file type characters.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "-"
	case TypeDir:
		return "d"
	case TypeSymlink:
		return "l"
	case TypeSocket:
		return "s"
	case TypeFifo:
		return "p"
	default:
		return "?"
	}
}

// Mode permission bits, a subset of POSIX mode_t.
const (
	ModeSticky uint16 = 0o1000
	ModeSetuid uint16 = 0o4000
)

// Errors returned by filesystem operations, mirroring errno values.
var (
	ErrNotExist    = errors.New("no such file or directory")         // ENOENT
	ErrExist       = errors.New("file exists")                       // EEXIST
	ErrNotDir      = errors.New("not a directory")                   // ENOTDIR
	ErrIsDir       = errors.New("is a directory")                    // EISDIR
	ErrPerm        = errors.New("permission denied")                 // EACCES
	ErrLoop        = errors.New("too many levels of symbolic links") // ELOOP
	ErrNotEmpty    = errors.New("directory not empty")               // ENOTEMPTY
	ErrInval       = errors.New("invalid argument")                  // EINVAL
	ErrNameTooLong = errors.New("file name too long")                // ENAMETOOLONG
)

// maxSymlinkDepth matches Linux's limit of 40 nested symlink resolutions.
const maxSymlinkDepth = 40

// maxPathComponents bounds resolution work, standing in for PATH_MAX.
const maxPathComponents = 256

// Inode is an in-memory inode. Fields are protected by the owning FS lock;
// callers outside the package must treat Inode as read-only snapshots except
// through FS methods.
type Inode struct {
	Ino  Ino
	Gen  uint32 // generation: bumped when the number is recycled
	Type FileType
	UID  int
	GID  int
	Mode uint16  // permission bits incl. sticky/setuid
	SID  mac.SID // MAC label

	Data    []byte            // regular file content
	Target  string            // symlink target
	entries map[string]*Inode // directory entries
	Nlink   int               // hard link count
	opens   int               // open file-description references

	// dgen is the directory's dentry generation. Every namespace mutation
	// of this directory (create, link, unlink, rmdir, rename) bumps it
	// *before* touching entries, inside the FS write lock. A cached dentry
	// is valid only while the generation it was filled under is still
	// current, so lock-free lookups can never observe a binding older than
	// the last completed mutation.
	dgen atomic.Uint64

	// SockOwner records the pid that bound a socket inode, used by the
	// simulated D-Bus daemon exploit (E6).
	SockOwner int

	// IPCID links a socket or fifo inode to its listener/queue in the IPC
	// registry. Zero means no endpoint is registered; registry IDs start
	// at 1 and are never recycled, so a stale IPCID can never alias a
	// later endpoint.
	IPCID uint64
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Type == TypeDir }

// IsSymlink reports whether the inode is a symbolic link.
func (n *Inode) IsSymlink() bool { return n.Type == TypeSymlink }

// Access describes one mediated object access during resolution or an
// operation. The kernel's Mediator receives one Access per path component
// touched, exactly as LSM hooks fire on every dentry during lookup.
type Access struct {
	Node  *Inode
	Path  string    // absolute path of Node as resolved
	Class mac.Class // object class of Node
	Want  mac.Perm  // permissions exercised by this step
}

// Mediator authorizes individual object accesses. Resolution aborts with the
// returned error when a mediator denies a step. The simulated kernel chains
// DAC, MAC (LSM), and the Process Firewall behind this interface.
type Mediator interface {
	Mediate(a Access) error
}

// MediatorFunc adapts a function to the Mediator interface.
type MediatorFunc func(a Access) error

// Mediate calls f(a).
func (f MediatorFunc) Mediate(a Access) error { return f(a) }

// nopMediator allows everything.
type nopMediator struct{}

func (nopMediator) Mediate(Access) error { return nil }

// NopMediator is a Mediator that allows every access; useful for setup code
// that populates a filesystem outside any process context.
var NopMediator Mediator = nopMediator{}

// FS is a single-device filesystem. All methods are safe for concurrent use.
//
// Concurrency model: mu is a readers-writer lock — namespace and metadata
// mutations take the write side; lookups that miss the dentry cache take the
// read side, so independent resolutions proceed concurrently. The dentry
// cache itself is read without any lock and validated against per-directory
// generation counters (see Inode.dgen), the same RCU-flavored discipline the
// PF engine uses for its ruleset snapshot.
type FS struct {
	mu       sync.RWMutex
	root     *Inode
	nextIno  Ino
	freeInos []Ino // recycled inode numbers, reused LIFO
	contexts *mac.FileContexts
	sids     *mac.SIDTable

	// dcache is the lock-free dentry cache: dentryKey -> *dentry. The map
	// is held behind an atomic pointer so a wholesale purge (size cap) is
	// one pointer swap. Individual entries are invalidated by generation
	// mismatch, never by deletion.
	dcache atomic.Pointer[sync.Map]
	dsize  atomic.Int64 // approximate entry count, for the purge cap

	// Stats counters, exercised by tests and the benchmark harness. They
	// are atomics because they are mutated on the lock-free hot path.
	Resolutions  atomic.Uint64 // total path resolutions
	Components   atomic.Uint64 // total components walked
	DcacheHits   atomic.Uint64 // component lookups served by the dentry cache
	DcacheMisses atomic.Uint64 // component lookups that fell back to the lock

	// DcacheInvalidations counts directory-generation bumps (one per
	// namespace mutation per affected directory); DcachePurges counts
	// wholesale cache swaps when the entry cap is exceeded. Both feed the
	// observability exporter.
	DcacheInvalidations atomic.Uint64
	DcachePurges        atomic.Uint64
}

// dentryKey identifies one directory entry: the directory inode (by
// identity, so recycled inode numbers cannot alias) and the component name.
type dentryKey struct {
	dir  *Inode
	name string
}

// dentry is one cached lookup result. node == nil is a negative entry (the
// name was absent), which accelerates repeated failing lookups the same way
// kernel negative dentries do.
type dentry struct {
	node *Inode
	gen  uint64 // dir.dgen observed before the authoritative lookup
}

// dcacheMaxEntries caps the dentry cache; exceeding it purges the whole
// cache (one pointer swap) rather than tracking LRU state on the hot path.
const dcacheMaxEntries = 1 << 16

// bumpDgen invalidates dir's cached dentries ahead of a namespace
// mutation; callers hold the FS write lock.
func (fs *FS) bumpDgen(dir *Inode) {
	dir.dgen.Add(1)
	fs.DcacheInvalidations.Add(1)
}

// New creates a filesystem whose root directory is owned by root (uid 0)
// with mode 0755 and labeled per contexts.
func New(sids *mac.SIDTable, contexts *mac.FileContexts) *FS {
	fs := &FS{nextIno: 2, contexts: contexts, sids: sids}
	fs.dcache.Store(new(sync.Map))
	fs.root = &Inode{
		Ino:     1,
		Type:    TypeDir,
		UID:     0,
		GID:     0,
		Mode:    0o755,
		SID:     sids.SID(contexts.LabelFor("/")),
		entries: make(map[string]*Inode),
		Nlink:   2,
	}
	return fs
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// SIDs returns the SID table labels are interned in.
func (fs *FS) SIDs() *mac.SIDTable { return fs.sids }

// allocIno returns the next inode number, preferring recycled numbers,
// which is what makes the cryogenic-sleep TOCTTOU variant expressible.
func (fs *FS) allocIno() Ino {
	if n := len(fs.freeInos); n > 0 {
		ino := fs.freeInos[n-1]
		fs.freeInos = fs.freeInos[:n-1]
		return ino
	}
	ino := fs.nextIno
	fs.nextIno++
	return ino
}

// releaseIno returns an inode number to the free pool.
func (fs *FS) releaseIno(ino Ino) { fs.freeInos = append(fs.freeInos, ino) }

// maybeFree recycles the inode number if the inode has neither links nor
// open references left.
func (fs *FS) maybeFree(n *Inode) {
	if n.Nlink <= 0 && n.opens <= 0 {
		fs.releaseIno(n.Ino)
	}
}

// IncOpen records an open file description referencing n (kernel open()).
func (fs *FS) IncOpen(n *Inode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n.opens++
}

// DecOpen drops an open reference; the inode number recycles if this was the
// last reference to an unlinked inode.
func (fs *FS) DecOpen(n *Inode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n.opens--
	fs.maybeFree(n)
}

// CanAccess performs the UNIX DAC check: does (uid, gid) hold the requested
// rwx bits on n? uid 0 bypasses permission checks except execute on files
// with no execute bit at all.
func CanAccess(n *Inode, uid, gid int, r, w, x bool) bool {
	if uid == 0 {
		if x && n.Type == TypeRegular && n.Mode&0o111 == 0 {
			return false
		}
		return true
	}
	var shift uint
	switch {
	case uid == n.UID:
		shift = 6
	case gid == n.GID:
		shift = 3
	default:
		shift = 0
	}
	bits := (n.Mode >> shift) & 0o7
	if r && bits&0o4 == 0 {
		return false
	}
	if w && bits&0o2 == 0 {
		return false
	}
	if x && bits&0o1 == 0 {
		return false
	}
	return true
}

// split breaks a path into components, ignoring empty and "." entries.
func split(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c == "" || c == "." {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ResolveOpts controls path resolution.
type ResolveOpts struct {
	// FollowFinal resolves a symlink in the final component (open default);
	// when false the final symlink inode itself is returned (lstat).
	FollowFinal bool
	// WantParent resolves to the parent directory of the final component,
	// returning the (possibly nonexistent) final name; used by create,
	// unlink, rename, symlink, mkdir.
	WantParent bool
	// CwdPath is the absolute path of cwd, used to reconstruct absolute
	// names for relative resolutions (labels and rules key off full paths).
	CwdPath string
	// Root overrides the filesystem root for this resolution (chroot):
	// absolute paths and absolute symlink targets start here, and ".."
	// cannot climb above it. nil means the global root.
	Root *Inode
	// RootPath is Root's absolute path in the global namespace, used to
	// reconstruct full names for labeling.
	RootPath string
}

// Resolved is the result of a path resolution.
type Resolved struct {
	Node   *Inode // final inode; nil when WantParent and the name is absent
	Parent *Inode // parent directory of the final component
	Name   string // final component name
	Path   string // absolute path of Node (or Parent/Name)
	// Trail lists every inode mediated during resolution, in order; tests
	// use it to assert complete mediation.
	Trail []Access

	// DcacheHits / DcacheMisses count this resolution's component lookups
	// by outcome. They are plain fields on the caller-owned result — unlike
	// the FS-wide atomics they cannot be perturbed by other processes, so
	// the kernel's tracing layer reads exact per-request deltas from them.
	DcacheHits   uint32
	DcacheMisses uint32
}

// Resolve walks path starting at cwd (or the root for absolute paths),
// invoking m once per directory searched and once per symlink read, then
// once more for the final object by the caller-specified operation (the
// caller mediates the final op itself, since the class/permission depend on
// the system call). Symlink chains deeper than 40 return ErrLoop.
//
// The filesystem lock is NOT held across mediator callouts — mirroring how
// LSM hooks run without global namespace locks — so mediators (and the
// Process Firewall context modules behind them) may themselves resolve
// paths, and adversaries on other goroutines may mutate bindings between
// steps, which is precisely the TOCTTOU surface.
func (fs *FS) Resolve(cwd *Inode, path string, opts ResolveOpts, m Mediator) (*Resolved, error) {
	res := &Resolved{}
	if err := fs.ResolveInto(res, cwd, path, opts, m); err != nil {
		return nil, err
	}
	return res, nil
}

// ResolveInto is Resolve writing into a caller-owned result, the
// allocation-free entry the kernel's mediation scratch uses. res is fully
// reset; its Trail backing array is reused across calls, so a caller that
// retains Trail entries must copy them before the next resolution. On the
// common shape — absolute path, no chroot, no "." / ".." / duplicate
// slashes, no symlinks — every intermediate Path string is a substring of
// path and the walk performs no allocation at all in the steady state.
func (fs *FS) ResolveInto(res *Resolved, cwd *Inode, path string, opts ResolveOpts, m Mediator) error {
	fs.Resolutions.Add(1)
	if m == nil {
		m = NopMediator
	}
	depth := 0
	res.Node, res.Parent, res.Name, res.Path = nil, nil, "", ""
	res.Trail = res.Trail[:0]
	res.DcacheHits, res.DcacheMisses = 0, 0
	return fs.resolveInto(res, cwd, path, opts, m, &depth)
}

// nextComp returns the half-open byte range [s, e) of the next path
// component at or after pos, skipping slashes, empty components, and ".".
// ok is false when no component remains. Index-based scanning replaces
// strings.Split so resolution does not allocate a component slice.
func nextComp(path string, pos int) (s, e int, ok bool) {
	for {
		for pos < len(path) && path[pos] == '/' {
			pos++
		}
		if pos >= len(path) {
			return 0, 0, false
		}
		s = pos
		for pos < len(path) && path[pos] != '/' {
			pos++
		}
		e = pos
		if e-s == 1 && path[s] == '.' {
			continue
		}
		return s, e, true
	}
}

// countComponents counts the components nextComp would yield, for the
// up-front ErrNameTooLong check (kept before any mediation fires, matching
// the historical behavior of the split-based walk).
func countComponents(path string) int {
	n := 0
	for pos := 0; ; {
		_, e, ok := nextComp(path, pos)
		if !ok {
			return n
		}
		n++
		pos = e
	}
}

// child looks up one directory entry, serving from the dentry cache when a
// generation-valid entry exists and falling back to a read-locked lookup of
// the authoritative directory map otherwise.
//
// Why a hit can never be stale: mutators bump dir.dgen inside the write
// lock *before* modifying entries. A cached dentry carries the generation
// read before its authoritative lookup; if that lookup raced a mutation,
// the generation it stored is already outdated and the entry never
// validates. Conversely a hit means dgen is unchanged since the fill's
// pre-lookup read, so no mutation of this directory has even started
// committing in between. The cache accelerates resolution only — every
// component still fires its Mediator hook, preserving complete mediation.
//
// The second result reports whether the lookup was a cache hit; resolveInto
// accumulates it per resolution so the tracing layer can attribute dentry-
// cache provenance to individual requests without reading the global
// (cross-process) counters.
func (fs *FS) child(dir *Inode, name string) (*Inode, bool) {
	g := dir.dgen.Load()
	m := fs.dcache.Load()
	key := dentryKey{dir: dir, name: name}
	if v, ok := m.Load(key); ok {
		d := v.(*dentry)
		if d.gen == g {
			fs.DcacheHits.Add(1)
			return d.node, true
		}
	}
	fs.DcacheMisses.Add(1)
	fs.mu.RLock()
	n := dir.entries[name]
	fs.mu.RUnlock()
	if fs.dsize.Add(1) > dcacheMaxEntries {
		fs.DcachePurges.Add(1)
		// Wholesale purge: swap in a fresh map. A racing fill may land in
		// the unreachable old map, which merely loses that one entry.
		fs.dsize.Store(0)
		fs.dcache.Store(new(sync.Map))
		return n, false
	}
	m.Store(key, &dentry{node: n, gen: g})
	return n, false
}

// resolveInto walks path into the shared res. Recursive symlink resolution
// passes the same res down, so the Trail accumulates across hops naturally
// (the old copy-and-prepend is unnecessary) and no per-hop Resolved is
// allocated.
func (fs *FS) resolveInto(res *Resolved, cwd *Inode, path string, opts ResolveOpts, m Mediator, depth *int) error {
	root := fs.root
	rootPath := ""
	if opts.Root != nil {
		root = opts.Root
		rootPath = strings.TrimSuffix(opts.RootPath, "/")
	}
	cur := cwd
	curPath := ""
	if cur == nil || strings.HasPrefix(path, "/") {
		cur = root
		curPath = rootPath
	} else if cur != fs.root {
		if opts.CwdPath != "" {
			curPath = strings.TrimSuffix(opts.CwdPath, "/")
		} else {
			// Unknown cwd path: trail entries are printed relative.
			curPath = "."
		}
	}
	if countComponents(path) > maxPathComponents {
		return ErrNameTooLong
	}
	s, e, ok := nextComp(path, 0)
	if !ok {
		if opts.WantParent {
			return ErrInval
		}
		rp := curPath
		if rp == "" {
			rp = "/"
		}
		a := Access{Node: cur, Path: rp, Class: mac.ClassDir, Want: mac.PermSearch}
		res.Trail = append(res.Trail, a)
		if err := m.Mediate(a); err != nil {
			return err
		}
		res.Node, res.Parent, res.Path = cur, cur, rp
		return nil
	}

	// On the simple shape — absolute path, no chroot, each component
	// directly following the previous one's slash (no "//", ".", "..") —
	// the child path for the component ending at e is path[:e] verbatim,
	// so intermediate paths are substrings instead of joinPath allocations.
	simple := opts.Root == nil && strings.HasPrefix(path, "/")
	prevEnd := 0
	for ok {
		comp := path[s:e]
		fs.Components.Add(1)
		if !cur.IsDir() {
			return ErrNotDir
		}
		// Mediate the directory search step.
		dirPath := curPath
		if dirPath == "" {
			dirPath = "/"
		}
		a := Access{Node: cur, Path: dirPath, Class: mac.ClassDir, Want: mac.PermSearch}
		res.Trail = append(res.Trail, a)
		if err := m.Mediate(a); err != nil {
			return err
		}

		ns, ne, more := nextComp(path, e)
		final := !more
		var next *Inode
		if comp == ".." {
			// Parent tracking: directories do not store parent pointers in
			// this simplified VFS; ".." is resolved by re-walking from the
			// root. ".." clamps at the resolution root, so a chroot cannot
			// be climbed out of with dot-dot.
			if cur == root {
				next = cur
			} else {
				next = fs.parentOf(cur)
			}
		} else {
			var hit bool
			next, hit = fs.child(cur, comp)
			if hit {
				res.DcacheHits++
			} else {
				res.DcacheMisses++
			}
		}
		// The contiguity check s == prevEnd+1 also rejects skipped "." or
		// empty components, which would make path[:e] unclean.
		simple = simple && s == prevEnd+1 && comp != ".."
		var childPath string
		if simple {
			childPath = path[:e]
		} else {
			childPath = joinPath(curPath, comp)
		}

		if next == nil {
			if final && opts.WantParent {
				res.Parent, res.Name, res.Path = cur, comp, childPath
				return nil
			}
			return ErrNotExist
		}

		// Symbolic link handling.
		if next.IsSymlink() && (!final || opts.FollowFinal) {
			*depth++
			if *depth > maxSymlinkDepth {
				return ErrLoop
			}
			la := Access{Node: next, Path: childPath, Class: mac.ClassLnkFile, Want: mac.PermRead}
			res.Trail = append(res.Trail, la)
			if err := m.Mediate(la); err != nil {
				return err
			}
			// Resolve the link target, then continue with the remaining
			// suffix of path (path[e] is '/' whenever more components
			// follow, so the concatenation stays a clean join; nextComp
			// re-skips any "." or "//" in the suffix).
			target := next.Target
			if more {
				target = target + path[e:]
			}
			start := cur
			if strings.HasPrefix(next.Target, "/") {
				// Absolute symlink targets resolve inside the chroot.
				start = root
			}
			// Re-resolving from the link's directory: absolute targets use
			// the link target path itself for labeling/paths.
			subOpts := opts
			subOpts.CwdPath = curPath
			return fs.resolveInto(res, start, target, subOpts, m, depth)
		}

		if final {
			if opts.WantParent {
				res.Parent, res.Name, res.Path, res.Node = cur, comp, childPath, next
				return nil
			}
			res.Node, res.Parent, res.Name, res.Path = next, cur, comp, childPath
			return nil
		}
		cur = next
		curPath = childPath
		prevEnd = e
		s, e, ok = ns, ne, more
	}
	return ErrNotExist // unreachable
}

// parentOf finds the directory containing dir by scanning from the
// root. O(n) but directories are small in the simulation.
func (fs *FS) parentOf(dir *Inode) *Inode {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if dir == fs.root {
		return fs.root
	}
	var walk func(d *Inode) *Inode
	var seen map[*Inode]bool
	seen = make(map[*Inode]bool)
	walk = func(d *Inode) *Inode {
		if seen[d] {
			return nil
		}
		seen[d] = true
		for _, e := range d.entries {
			if e == dir {
				return d
			}
			if e.IsDir() {
				if p := walk(e); p != nil {
					return p
				}
			}
		}
		return nil
	}
	if p := walk(fs.root); p != nil {
		return p
	}
	return fs.root
}

// joinPath appends comp to base producing a clean absolute-ish path.
func joinPath(base, comp string) string {
	if base == "" || base == "/" {
		return "/" + comp
	}
	return base + "/" + comp
}

// CreateOpts parameterizes file creation.
type CreateOpts struct {
	UID, GID int
	Mode     uint16
	Type     FileType
	Target   string    // for symlinks
	Label    mac.Label // override label; empty means use file contexts
}

// CreateAt creates a new inode named name inside dir. The caller must have
// resolved dir and performed write mediation on it already.
func (fs *FS) CreateAt(dir *Inode, name, fullPath string, o CreateOpts) (*Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !dir.IsDir() {
		return nil, ErrNotDir
	}
	fs.bumpDgen(dir) // invalidate cached (dir, name) dentries, incl. negative
	if _, ok := dir.entries[name]; ok {
		return nil, ErrExist
	}
	if o.Type == 0 {
		o.Type = TypeRegular
	}
	lbl := o.Label
	if lbl == "" {
		lbl = fs.contexts.LabelFor(fullPath)
	}
	n := &Inode{
		Ino:    fs.allocIno(),
		Type:   o.Type,
		UID:    o.UID,
		GID:    o.GID,
		Mode:   o.Mode,
		SID:    fs.sids.SID(lbl),
		Nlink:  1,
		Target: o.Target,
	}
	if n.Type == TypeDir {
		n.entries = make(map[string]*Inode)
		n.Nlink = 2
		dir.Nlink++
	}
	dir.entries[name] = n
	return n, nil
}

// Link adds a hard link to node under dir/name.
func (fs *FS) Link(dir *Inode, name string, node *Inode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !dir.IsDir() {
		return ErrNotDir
	}
	if node.IsDir() {
		return ErrPerm // hard links to directories are forbidden
	}
	if _, ok := dir.entries[name]; ok {
		return ErrExist
	}
	fs.bumpDgen(dir)
	dir.entries[name] = node
	node.Nlink++
	return nil
}

// Unlink removes dir/name. Directory entries must be removed with Rmdir.
// The sticky-bit restricted-deletion rule is enforced by the kernel's DAC
// layer, not here.
func (fs *FS) Unlink(dir *Inode, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := dir.entries[name]
	if !ok {
		return ErrNotExist
	}
	if n.IsDir() {
		return ErrIsDir
	}
	fs.bumpDgen(dir)
	delete(dir.entries, name)
	n.Nlink--
	fs.maybeFree(n)
	return nil
}

// Rmdir removes an empty directory dir/name.
func (fs *FS) Rmdir(dir *Inode, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := dir.entries[name]
	if !ok {
		return ErrNotExist
	}
	if !n.IsDir() {
		return ErrNotDir
	}
	if len(n.entries) > 0 {
		return ErrNotEmpty
	}
	fs.bumpDgen(dir)
	delete(dir.entries, name)
	n.Nlink -= 2
	dir.Nlink--
	fs.maybeFree(n)
	return nil
}

// Rename moves srcDir/srcName to dstDir/dstName, replacing a non-directory
// target if present. This is the atomic operation adversaries use to flip
// bindings between a victim's check and use calls.
func (fs *FS) Rename(srcDir *Inode, srcName string, dstDir *Inode, dstName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := srcDir.entries[srcName]
	if !ok {
		return ErrNotExist
	}
	fs.bumpDgen(srcDir)
	fs.bumpDgen(dstDir)
	if old, ok := dstDir.entries[dstName]; ok {
		if old.IsDir() {
			return ErrIsDir
		}
		old.Nlink--
		fs.maybeFree(old)
	}
	delete(srcDir.entries, srcName)
	dstDir.entries[dstName] = n
	return nil
}

// Lookup returns the child of dir named name without mediation; intended
// for tests and setup code.
func (fs *FS) Lookup(dir *Inode, name string) (*Inode, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := dir.entries[name]
	return n, ok
}

// List returns dir's entry names in sorted order.
func (fs *FS) List(dir *Inode) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(dir.entries))
	for name := range dir.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadFile returns a copy of the file's content.
func (fs *FS) ReadFile(n *Inode) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if n.IsDir() {
		return nil, ErrIsDir
	}
	out := make([]byte, len(n.Data))
	copy(out, n.Data)
	return out, nil
}

// WriteFile replaces the file's content.
func (fs *FS) WriteFile(n *Inode, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n.IsDir() {
		return ErrIsDir
	}
	n.Data = append(n.Data[:0], data...)
	return nil
}

// Chmod sets the permission bits.
func (fs *FS) Chmod(n *Inode, mode uint16) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n.Mode = mode
}

// Chown sets ownership.
func (fs *FS) Chown(n *Inode, uid, gid int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n.UID, n.GID = uid, gid
}

// Relabel overrides an inode's MAC label.
func (fs *FS) Relabel(n *Inode, lbl mac.Label) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n.SID = fs.sids.SID(lbl)
}

// Stat is the subset of struct stat that the paper's defenses compare:
// device constant, inode number, generation, type, ownership, and mode.
type Stat struct {
	Dev  uint32
	Ino  Ino
	Gen  uint32
	Type FileType
	UID  int
	GID  int
	Mode uint16
	Size int
	SID  mac.SID
}

// StatOf snapshots n's metadata.
func (fs *FS) StatOf(n *Inode) Stat {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return Stat{
		Dev: 1, Ino: n.Ino, Gen: n.Gen, Type: n.Type,
		UID: n.UID, GID: n.GID, Mode: n.Mode, Size: len(n.Data), SID: n.SID,
	}
}

// MustPath is a setup helper: it creates every directory along path (mode
// 0755, root-owned) and returns the final directory. It panics on conflict,
// which is acceptable for world-building code.
func (fs *FS) MustPath(path string) *Inode {
	cur := fs.root
	curPath := ""
	for _, comp := range split(path) {
		curPath = joinPath(curPath, comp)
		fs.mu.RLock()
		next, ok := cur.entries[comp]
		fs.mu.RUnlock()
		if ok {
			if !next.IsDir() {
				panic(fmt.Sprintf("vfs: MustPath %s: %s is not a directory", path, curPath))
			}
			cur = next
			continue
		}
		n, err := fs.CreateAt(cur, comp, curPath, CreateOpts{Mode: 0o755, Type: TypeDir})
		if err != nil {
			panic(fmt.Sprintf("vfs: MustPath %s: %v", path, err))
		}
		cur = n
	}
	return cur
}
