package vfs

import (
	"errors"
	"testing"
	"testing/quick"

	"pfirewall/internal/mac"
)

func newTestFS() *FS {
	sids := mac.NewSIDTable()
	fc := mac.NewFileContexts("default_t")
	fc.Add("/tmp", "tmp_t")
	fc.Add("/etc", "etc_t")
	fc.Add("/lib", "lib_t")
	return New(sids, fc)
}

func mustCreate(t *testing.T, fs *FS, dir *Inode, name, path string, o CreateOpts) *Inode {
	t.Helper()
	n, err := fs.CreateAt(dir, name, path, o)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	return n
}

func TestMustPathAndLabels(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	etc := fs.MustPath("/etc")
	if tmp == etc {
		t.Fatal("distinct paths returned same inode")
	}
	f := mustCreate(t, fs, tmp, "x", "/tmp/x", CreateOpts{Mode: 0o644})
	if lbl := fs.SIDs().Label(f.SID); lbl != "tmp_t" {
		t.Errorf("/tmp/x label = %q, want tmp_t", lbl)
	}
	g := mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{Mode: 0o644})
	if lbl := fs.SIDs().Label(g.SID); lbl != "etc_t" {
		t.Errorf("/etc/passwd label = %q, want etc_t", lbl)
	}
}

func TestCreateLabelOverride(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "s", "/tmp/s", CreateOpts{Label: "shadow_t"})
	if lbl := fs.SIDs().Label(f.SID); lbl != "shadow_t" {
		t.Errorf("label override = %q, want shadow_t", lbl)
	}
}

func TestResolveBasic(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	want := mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{Mode: 0o644})

	res, err := fs.Resolve(nil, "/etc/passwd", ResolveOpts{FollowFinal: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != want {
		t.Error("resolved wrong inode")
	}
	if res.Path != "/etc/passwd" {
		t.Errorf("Path = %q", res.Path)
	}
	if res.Parent != etc || res.Name != "passwd" {
		t.Error("parent/name wrong")
	}
}

func TestResolveMissing(t *testing.T) {
	fs := newTestFS()
	fs.MustPath("/etc")
	_, err := fs.Resolve(nil, "/etc/nope", ResolveOpts{}, nil)
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	_, err = fs.Resolve(nil, "/nope/deep/file", ResolveOpts{}, nil)
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestResolveThroughFileFails(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "f", "/etc/f", CreateOpts{})
	_, err := fs.Resolve(nil, "/etc/f/x", ResolveOpts{}, nil)
	if !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestResolveWantParent(t *testing.T) {
	fs := newTestFS()
	fs.MustPath("/tmp")
	res, err := fs.Resolve(nil, "/tmp/newfile", ResolveOpts{WantParent: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != nil {
		t.Error("Node should be nil for absent final component")
	}
	if res.Name != "newfile" || res.Path != "/tmp/newfile" {
		t.Errorf("Name=%q Path=%q", res.Name, res.Path)
	}
	// Existing final component: Node is set too.
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "exists", "/tmp/exists", CreateOpts{})
	res, err = fs.Resolve(nil, "/tmp/exists", ResolveOpts{WantParent: true}, nil)
	if err != nil || res.Node != f {
		t.Errorf("WantParent on existing: node=%v err=%v", res.Node, err)
	}
}

func TestSymlinkFollow(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	tmp := fs.MustPath("/tmp")
	passwd := mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{Mode: 0o644})
	mustCreate(t, fs, tmp, "link", "/tmp/link", CreateOpts{Type: TypeSymlink, Target: "/etc/passwd"})

	res, err := fs.Resolve(nil, "/tmp/link", ResolveOpts{FollowFinal: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != passwd {
		t.Error("symlink did not resolve to target")
	}

	// lstat semantics: do not follow the final symlink.
	res, err = fs.Resolve(nil, "/tmp/link", ResolveOpts{FollowFinal: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Node.IsSymlink() {
		t.Error("FollowFinal=false should return the link inode")
	}
}

func TestSymlinkRelative(t *testing.T) {
	fs := newTestFS()
	dir := fs.MustPath("/a/b")
	target := mustCreate(t, fs, dir, "t", "/a/b/t", CreateOpts{})
	mustCreate(t, fs, dir, "l", "/a/b/l", CreateOpts{Type: TypeSymlink, Target: "t"})
	res, err := fs.Resolve(nil, "/a/b/l", ResolveOpts{FollowFinal: true}, nil)
	if err != nil || res.Node != target {
		t.Fatalf("relative symlink: node=%v err=%v", res.Node, err)
	}
}

func TestSymlinkMidPath(t *testing.T) {
	fs := newTestFS()
	fs.MustPath("/var/www")
	www := fs.MustPath("/var/www")
	f := mustCreate(t, fs, www, "index", "/var/www/index", CreateOpts{})
	srv := fs.MustPath("/srv")
	mustCreate(t, fs, srv, "web", "/srv/web", CreateOpts{Type: TypeSymlink, Target: "/var/www"})

	res, err := fs.Resolve(nil, "/srv/web/index", ResolveOpts{FollowFinal: false}, nil)
	if err != nil || res.Node != f {
		t.Fatalf("mid-path symlink: node=%v err=%v", res.Node, err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	mustCreate(t, fs, tmp, "a", "/tmp/a", CreateOpts{Type: TypeSymlink, Target: "/tmp/b"})
	mustCreate(t, fs, tmp, "b", "/tmp/b", CreateOpts{Type: TypeSymlink, Target: "/tmp/a"})
	_, err := fs.Resolve(nil, "/tmp/a", ResolveOpts{FollowFinal: true}, nil)
	if !errors.Is(err, ErrLoop) {
		t.Errorf("err = %v, want ErrLoop", err)
	}
}

func TestResolveMediationTrail(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{Mode: 0o644})

	var steps []Access
	m := MediatorFunc(func(a Access) error {
		steps = append(steps, a)
		return nil
	})
	_, err := fs.Resolve(nil, "/etc/passwd", ResolveOpts{FollowFinal: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: search /, search /etc. (Final object mediation is the
	// caller's responsibility.)
	if len(steps) != 2 {
		t.Fatalf("mediated %d steps, want 2: %+v", len(steps), steps)
	}
	if steps[0].Path != "/" || steps[1].Path != "/etc" {
		t.Errorf("trail paths: %q, %q", steps[0].Path, steps[1].Path)
	}
	for _, s := range steps {
		if s.Class != mac.ClassDir || s.Want != mac.PermSearch {
			t.Errorf("step %+v: want dir search", s)
		}
	}
}

func TestResolveMediatesSymlinkRead(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	fs.MustPath("/etc")
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{})
	mustCreate(t, fs, tmp, "l", "/tmp/l", CreateOpts{Type: TypeSymlink, Target: "/etc/passwd"})

	var linkReads int
	m := MediatorFunc(func(a Access) error {
		if a.Class == mac.ClassLnkFile {
			linkReads++
			if a.Path != "/tmp/l" {
				t.Errorf("link read path = %q", a.Path)
			}
		}
		return nil
	})
	if _, err := fs.Resolve(nil, "/tmp/l", ResolveOpts{FollowFinal: true}, m); err != nil {
		t.Fatal(err)
	}
	if linkReads != 1 {
		t.Errorf("link reads = %d, want 1", linkReads)
	}
}

func TestResolveDenied(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{})
	denied := errors.New("denied by test")
	m := MediatorFunc(func(a Access) error {
		if a.Path == "/etc" {
			return denied
		}
		return nil
	})
	_, err := fs.Resolve(nil, "/etc/passwd", ResolveOpts{FollowFinal: true}, m)
	if !errors.Is(err, denied) {
		t.Errorf("err = %v, want mediation denial", err)
	}
}

func TestResolveRelativeToCwd(t *testing.T) {
	fs := newTestFS()
	home := fs.MustPath("/home/alice")
	f := mustCreate(t, fs, home, "doc", "/home/alice/doc", CreateOpts{})
	res, err := fs.Resolve(home, "doc", ResolveOpts{}, nil)
	if err != nil || res.Node != f {
		t.Fatalf("relative resolve: %v %v", res, err)
	}
}

func TestResolveDotDot(t *testing.T) {
	fs := newTestFS()
	fs.MustPath("/var/www/html")
	etc := fs.MustPath("/etc")
	passwd := mustCreate(t, fs, etc, "passwd", "/etc/passwd", CreateOpts{})
	html := fs.MustPath("/var/www/html")

	// The directory traversal attack path: ../../../etc/passwd.
	res, err := fs.Resolve(html, "../../../etc/passwd", ResolveOpts{}, nil)
	if err != nil || res.Node != passwd {
		t.Fatalf("dotdot resolve: node=%v err=%v", res.Node, err)
	}
}

func TestDotDotFromRoot(t *testing.T) {
	fs := newTestFS()
	etc := fs.MustPath("/etc")
	f := mustCreate(t, fs, etc, "x", "/etc/x", CreateOpts{})
	res, err := fs.Resolve(nil, "/../etc/x", ResolveOpts{}, nil)
	if err != nil || res.Node != f {
		t.Fatalf("root dotdot: %v %v", res, err)
	}
}

func TestUnlinkRecyclesIno(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "a", "/tmp/a", CreateOpts{})
	ino := f.Ino
	if err := fs.Unlink(tmp, "a"); err != nil {
		t.Fatal(err)
	}
	g := mustCreate(t, fs, tmp, "b", "/tmp/b", CreateOpts{})
	if g.Ino != ino {
		t.Errorf("recycled ino = %d, want %d (cryogenic-sleep precondition)", g.Ino, ino)
	}
}

func TestOpenFileBlocksRecycling(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "a", "/tmp/a", CreateOpts{})
	ino := f.Ino
	fs.IncOpen(f)
	if err := fs.Unlink(tmp, "a"); err != nil {
		t.Fatal(err)
	}
	g := mustCreate(t, fs, tmp, "b", "/tmp/b", CreateOpts{})
	if g.Ino == ino {
		t.Error("ino recycled while file still open — safe_open invariant broken")
	}
	fs.DecOpen(f)
	h := mustCreate(t, fs, tmp, "c", "/tmp/c", CreateOpts{})
	if h.Ino != ino {
		t.Errorf("after close, ino should recycle: got %d want %d", h.Ino, ino)
	}
}

func TestHardLinks(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "a", "/tmp/a", CreateOpts{})
	if err := fs.Link(tmp, "b", f); err != nil {
		t.Fatal(err)
	}
	if f.Nlink != 2 {
		t.Errorf("Nlink = %d, want 2", f.Nlink)
	}
	if err := fs.Unlink(tmp, "a"); err != nil {
		t.Fatal(err)
	}
	res, err := fs.Resolve(nil, "/tmp/b", ResolveOpts{}, nil)
	if err != nil || res.Node != f {
		t.Error("hard link should survive unlink of original name")
	}
	// No hard links to directories.
	d := fs.MustPath("/tmp/dir")
	if err := fs.Link(tmp, "dlink", d); !errors.Is(err, ErrPerm) {
		t.Errorf("hard link to dir: err = %v, want ErrPerm", err)
	}
}

func TestRenameReplaces(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	a := mustCreate(t, fs, tmp, "a", "/tmp/a", CreateOpts{})
	mustCreate(t, fs, tmp, "b", "/tmp/b", CreateOpts{})
	if err := fs.Rename(tmp, "a", tmp, "b"); err != nil {
		t.Fatal(err)
	}
	res, err := fs.Resolve(nil, "/tmp/b", ResolveOpts{}, nil)
	if err != nil || res.Node != a {
		t.Error("rename did not replace target")
	}
	if _, err := fs.Resolve(nil, "/tmp/a", ResolveOpts{}, nil); !errors.Is(err, ErrNotExist) {
		t.Error("source name should be gone after rename")
	}
}

func TestRenameSwapsBindingForRace(t *testing.T) {
	// The canonical TOCTTOU adversary action: replace a plain file with a
	// symlink to a secret between a victim's check and use.
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	etc := fs.MustPath("/etc")
	mustCreate(t, fs, etc, "shadow", "/etc/shadow", CreateOpts{Mode: 0o600})
	mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{Mode: 0o644})

	// check: lstat says regular file
	res1, _ := fs.Resolve(nil, "/tmp/f", ResolveOpts{}, nil)
	if res1.Node.IsSymlink() {
		t.Fatal("precondition failed")
	}

	// adversary flips the binding
	if err := fs.Unlink(tmp, "f"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{Type: TypeSymlink, Target: "/etc/shadow"})

	// use: open follows to the secret
	res2, err := fs.Resolve(nil, "/tmp/f", ResolveOpts{FollowFinal: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs.SIDs().Label(res2.Node.SID) == fs.SIDs().Label(res1.Node.SID) {
		t.Error("race should reach a different object")
	}
	if res2.Node.Ino == res1.Node.Ino {
		t.Error("inode comparison should detect this race variant")
	}
}

func TestRmdir(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	fs.MustPath("/tmp/d")
	if err := fs.Rmdir(tmp, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/tmp/d", ResolveOpts{}, nil); !errors.Is(err, ErrNotExist) {
		t.Error("rmdir'd directory still resolvable")
	}
	fs.MustPath("/tmp/e/inner")
	if err := fs.Rmdir(tmp, "e"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty: err = %v, want ErrNotEmpty", err)
	}
}

func TestCanAccessDAC(t *testing.T) {
	n := &Inode{Type: TypeRegular, UID: 1000, GID: 100, Mode: 0o640}
	cases := []struct {
		uid, gid int
		r, w, x  bool
		want     bool
	}{
		{1000, 100, true, true, false, true},   // owner rw
		{1000, 100, false, false, true, false}, // owner x denied
		{2000, 100, true, false, false, true},  // group r
		{2000, 100, false, true, false, false}, // group w denied
		{2000, 200, true, false, false, false}, // other r denied
		{0, 0, true, true, false, true},        // root bypasses rw
		{0, 0, false, false, true, false},      // root x needs some x bit
	}
	for i, c := range cases {
		if got := CanAccess(n, c.uid, c.gid, c.r, c.w, c.x); got != c.want {
			t.Errorf("case %d: CanAccess = %v, want %v", i, got, c.want)
		}
	}
}

func TestCanAccessRootExecWithAnyXBit(t *testing.T) {
	n := &Inode{Type: TypeRegular, UID: 1000, GID: 100, Mode: 0o700}
	if !CanAccess(n, 0, 0, false, false, true) {
		t.Error("root should exec when any x bit set")
	}
}

func TestReadWriteFile(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{})
	if err := fs.WriteFile(f, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(f)
	if err != nil || string(data) != "hello" {
		t.Errorf("ReadFile = %q, %v", data, err)
	}
	// Mutating the returned slice must not alias inode data.
	data[0] = 'X'
	data2, _ := fs.ReadFile(f)
	if string(data2) != "hello" {
		t.Error("ReadFile aliases inode data")
	}
	d := fs.MustPath("/tmp/d")
	if err := fs.WriteFile(d, nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("write dir: %v", err)
	}
}

func TestStatOf(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{UID: 33, GID: 33, Mode: 0o644})
	fs.WriteFile(f, []byte("abc"))
	st := fs.StatOf(f)
	if st.Ino != f.Ino || st.UID != 33 || st.Size != 3 || st.Type != TypeRegular || st.Dev != 1 {
		t.Errorf("StatOf = %+v", st)
	}
}

func TestCreateExisting(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{})
	if _, err := fs.CreateAt(tmp, "f", "/tmp/f", CreateOpts{}); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v, want ErrExist", err)
	}
}

func TestChmodChownRelabel(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	f := mustCreate(t, fs, tmp, "f", "/tmp/f", CreateOpts{Mode: 0o600})
	fs.Chmod(f, 0o644)
	if f.Mode != 0o644 {
		t.Error("chmod failed")
	}
	fs.Chown(f, 5, 6)
	if f.UID != 5 || f.GID != 6 {
		t.Error("chown failed")
	}
	fs.Relabel(f, "var_t")
	if fs.SIDs().Label(f.SID) != "var_t" {
		t.Error("relabel failed")
	}
}

func TestListSorted(t *testing.T) {
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	for _, n := range []string{"c", "a", "b"} {
		mustCreate(t, fs, tmp, n, "/tmp/"+n, CreateOpts{})
	}
	got := fs.List(tmp)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestPathTooLong(t *testing.T) {
	fs := newTestFS()
	long := ""
	for i := 0; i < maxPathComponents+1; i++ {
		long += "/x"
	}
	if _, err := fs.Resolve(nil, long, ResolveOpts{}, nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

func TestResolveRoot(t *testing.T) {
	fs := newTestFS()
	res, err := fs.Resolve(nil, "/", ResolveOpts{}, nil)
	if err != nil || res.Node != fs.Root() {
		t.Fatalf("resolve /: %v %v", res, err)
	}
}

func TestSplitProperty(t *testing.T) {
	// Property: split never returns empty or "." components.
	f := func(s string) bool {
		for _, c := range split(s) {
			if c == "" || c == "." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInoUniqueAmongLive(t *testing.T) {
	// Property: all live inodes have distinct inode numbers even after
	// heavy create/unlink churn.
	fs := newTestFS()
	tmp := fs.MustPath("/tmp")
	names := []string{"a", "b", "c", "d", "e"}
	for round := 0; round < 50; round++ {
		for _, n := range names {
			if _, ok := fs.Lookup(tmp, n); ok {
				fs.Unlink(tmp, n)
			} else {
				mustCreate(t, fs, tmp, n, "/tmp/"+n, CreateOpts{})
			}
		}
		seen := map[Ino]bool{}
		for _, n := range fs.List(tmp) {
			node, _ := fs.Lookup(tmp, n)
			if node.IsDir() {
				continue
			}
			if seen[node.Ino] {
				t.Fatalf("round %d: duplicate live ino %d", round, node.Ino)
			}
			seen[node.Ino] = true
		}
	}
}
