package mac

import (
	"testing"
	"testing/quick"
)

func TestSIDTableInterning(t *testing.T) {
	tbl := NewSIDTable()
	a := tbl.SID("httpd_t")
	b := tbl.SID("tmp_t")
	if a == b {
		t.Fatalf("distinct labels got same SID %d", a)
	}
	if got := tbl.SID("httpd_t"); got != a {
		t.Errorf("re-intern httpd_t = %d, want %d", got, a)
	}
	if got := tbl.Label(a); got != "httpd_t" {
		t.Errorf("Label(%d) = %q, want httpd_t", a, got)
	}
	if s, ok := tbl.Lookup("nope_t"); ok || s != InvalidSID {
		t.Errorf("Lookup(nope_t) = %d,%v, want 0,false", s, ok)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
}

func TestSIDTableInvalidSID(t *testing.T) {
	tbl := NewSIDTable()
	if got := tbl.Label(InvalidSID); got != "" {
		t.Errorf("Label(0) = %q, want empty", got)
	}
	if got := tbl.Label(99); got != "" {
		t.Errorf("Label(99) = %q, want empty", got)
	}
}

func TestSIDTableDense(t *testing.T) {
	// Property: SIDs are dense positive integers in order of first intern.
	tbl := NewSIDTable()
	labels := []Label{"a_t", "b_t", "c_t", "d_t"}
	for i, l := range labels {
		if got := tbl.SID(l); got != SID(i+1) {
			t.Errorf("SID(%q) = %d, want %d", l, got, i+1)
		}
	}
}

func TestAuthorized(t *testing.T) {
	p := NewPolicy(NewSIDTable())
	p.Allow("httpd_t", "httpd_content_t", ClassFile, PermRead|PermGetattr)
	sub, _ := p.SIDs().Lookup("httpd_t")
	obj, _ := p.SIDs().Lookup("httpd_content_t")

	if !p.Authorized(sub, obj, ClassFile, PermRead) {
		t.Error("read should be authorized")
	}
	if p.Authorized(sub, obj, ClassFile, PermWrite) {
		t.Error("write should be denied")
	}
	if p.Authorized(sub, obj, ClassFile, PermRead|PermWrite) {
		t.Error("read+write should be denied when only read is allowed")
	}
	if p.Authorized(sub, obj, ClassDir, PermRead) {
		t.Error("read on class dir should be denied (class-specific rules)")
	}
}

func TestAllowAccumulates(t *testing.T) {
	p := NewPolicy(NewSIDTable())
	p.Allow("a_t", "o_t", ClassFile, PermRead)
	p.Allow("a_t", "o_t", ClassFile, PermWrite)
	sub, _ := p.SIDs().Lookup("a_t")
	obj, _ := p.SIDs().Lookup("o_t")
	if !p.Authorized(sub, obj, ClassFile, PermRead|PermWrite) {
		t.Error("permissions from separate Allow calls should accumulate")
	}
}

// buildTestPolicy models a tiny SELinux-like deployment:
// trusted httpd_t/sshd_t, untrusted user_t; user_t can write tmp_t and
// read user_home_t, but cannot touch shadow_t or lib_t.
func buildTestPolicy() *Policy {
	p := NewPolicy(NewSIDTable())
	p.MarkTrusted("httpd_t", "sshd_t", "lib_t", "shadow_t", "etc_t")
	p.Allow("httpd_t", "httpd_content_t", ClassFile, PermRead)
	p.Allow("httpd_t", "shadow_t", ClassFile, PermRead)
	p.Allow("sshd_t", "etc_t", ClassFile, PermRead)
	p.Allow("user_t", "tmp_t", ClassFile, PermRead|PermWrite|PermCreate)
	p.Allow("user_t", "tmp_t", ClassDir, PermAddName|PermSearch)
	p.Allow("user_t", "user_home_t", ClassFile, PermRead|PermWrite)
	p.Allow("user_t", "httpd_content_t", ClassFile, PermRead)
	return p
}

func TestAdversariesOf(t *testing.T) {
	p := buildTestPolicy()
	httpd, _ := p.SIDs().Lookup("httpd_t")
	user, _ := p.SIDs().Lookup("user_t")

	advs := p.AdversariesOf(httpd)
	if len(advs) != 1 || advs[0] != user {
		t.Errorf("adversaries of trusted httpd_t = %v, want [user_t=%d]", advs, user)
	}

	// For an untrusted victim, every other subject is an adversary.
	advs = p.AdversariesOf(user)
	for _, a := range advs {
		if a == user {
			t.Error("a subject must not be its own adversary")
		}
	}
	if len(advs) != 2 { // httpd_t and sshd_t appear as subjects
		t.Errorf("adversaries of user_t = %v, want 2 entries", advs)
	}
}

func TestAdversaryWritable(t *testing.T) {
	p := buildTestPolicy()
	httpd, _ := p.SIDs().Lookup("httpd_t")
	tmp, _ := p.SIDs().Lookup("tmp_t")
	shadow, _ := p.SIDs().Lookup("shadow_t")

	if !p.AdversaryWritable(httpd, tmp) {
		t.Error("tmp_t should be adversary-writable for httpd_t (user_t writes /tmp)")
	}
	if p.AdversaryWritable(httpd, shadow) {
		t.Error("shadow_t must not be adversary-writable for httpd_t")
	}
	// Cache path: second call must agree.
	if !p.AdversaryWritable(httpd, tmp) {
		t.Error("cached adversary-writable answer changed")
	}
}

func TestAdversaryReadable(t *testing.T) {
	p := buildTestPolicy()
	httpd, _ := p.SIDs().Lookup("httpd_t")
	home, _ := p.SIDs().Lookup("user_home_t")
	shadow, _ := p.SIDs().Lookup("shadow_t")

	if !p.AdversaryReadable(httpd, home) {
		t.Error("user_home_t should be adversary-readable for httpd_t")
	}
	if p.AdversaryReadable(httpd, shadow) {
		t.Error("shadow_t must not be adversary-readable for httpd_t")
	}
}

func TestCacheInvalidationOnPolicyChange(t *testing.T) {
	p := buildTestPolicy()
	httpd, _ := p.SIDs().Lookup("httpd_t")
	shadow, _ := p.SIDs().Lookup("shadow_t")

	if p.AdversaryWritable(httpd, shadow) {
		t.Fatal("precondition: shadow_t not adversary-writable")
	}
	// Grant the adversary write access; the cached negative must be dropped.
	p.Allow("user_t", "shadow_t", ClassFile, PermWrite)
	if !p.AdversaryWritable(httpd, shadow) {
		t.Error("policy change not reflected: stale adversary cache")
	}
}

func TestLowIntegrity(t *testing.T) {
	p := buildTestPolicy()
	tmp, _ := p.SIDs().Lookup("tmp_t")
	lib := p.SIDs().SID("lib_t")
	if !p.LowIntegrity(tmp) {
		t.Error("tmp_t should be low integrity")
	}
	if p.LowIntegrity(lib) {
		t.Error("lib_t should be high integrity")
	}
}

func TestTrustedSet(t *testing.T) {
	p := buildTestPolicy()
	set := p.TrustedSet()
	if len(set) != 5 {
		t.Fatalf("TrustedSet len = %d, want 5", len(set))
	}
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Error("TrustedSet must be sorted ascending")
		}
	}
	for _, s := range set {
		if !p.Trusted(s) {
			t.Errorf("SID %d in TrustedSet but Trusted()=false", s)
		}
	}
}

func TestPermString(t *testing.T) {
	if got := Perm(0).String(); got != "{}" {
		t.Errorf("Perm(0) = %q", got)
	}
	got := (PermRead | PermWrite).String()
	if got != "{ read write }" {
		t.Errorf("read|write = %q", got)
	}
}

func TestParsePerm(t *testing.T) {
	p, err := ParsePerm("connect")
	if err != nil || p != PermConnect {
		t.Errorf("ParsePerm(connect) = %v,%v", p, err)
	}
	if _, err := ParsePerm("fly"); err == nil {
		t.Error("ParsePerm(fly) should fail")
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassFile: "file", ClassDir: "dir", ClassLnkFile: "lnk_file",
		ClassSockFile: "sock_file", ClassUnixStreamSocket: "unix_stream_socket",
		ClassProcess: "process", ClassFifoFile: "fifo_file",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestFileContextsLongestPrefix(t *testing.T) {
	fc := NewFileContexts("default_t")
	fc.Add("/", "root_t")
	fc.Add("/tmp", "tmp_t")
	fc.Add("/var/www", "httpd_content_t")
	fc.Add("/var/www/cgi-bin", "httpd_script_t")

	cases := map[string]Label{
		"/tmp/x":                "tmp_t",
		"/tmp":                  "tmp_t",
		"/tmpfoo":               "root_t", // prefix must end at a component
		"/var/www/index.html":   "httpd_content_t",
		"/var/www/cgi-bin/a.pl": "httpd_script_t",
		"/etc/passwd":           "root_t",
	}
	for path, want := range cases {
		if got := fc.LabelFor(path); got != want {
			t.Errorf("LabelFor(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestFileContextsDefault(t *testing.T) {
	fc := NewFileContexts("unlabeled_t")
	if got := fc.LabelFor("/anything"); got != "unlabeled_t" {
		t.Errorf("empty contexts LabelFor = %q, want unlabeled_t", got)
	}
	if fc.Default() != "unlabeled_t" {
		t.Error("Default mismatch")
	}
}

func TestFileContextsOverwrite(t *testing.T) {
	fc := NewFileContexts("d_t")
	fc.Add("/tmp", "a_t")
	fc.Add("/tmp", "b_t")
	if got := fc.LabelFor("/tmp/f"); got != "b_t" {
		t.Errorf("overwritten prefix label = %q, want b_t", got)
	}
}

func TestSIDRoundTripProperty(t *testing.T) {
	tbl := NewSIDTable()
	f := func(s string) bool {
		l := Label(s)
		return tbl.Label(tbl.SID(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthorizedSubsetProperty(t *testing.T) {
	// Property: if a permission set is authorized, every subset is too.
	p := NewPolicy(NewSIDTable())
	p.Allow("s_t", "o_t", ClassFile, PermRead|PermWrite|PermGetattr)
	sub, _ := p.SIDs().Lookup("s_t")
	obj, _ := p.SIDs().Lookup("o_t")
	full := PermRead | PermWrite | PermGetattr
	f := func(bits uint32) bool {
		sub32 := Perm(bits) & full
		return p.Authorized(sub, obj, ClassFile, sub32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
