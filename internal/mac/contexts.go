package mac

import (
	"sort"
	"strings"
	"sync"
)

// FileContexts assigns labels to filesystem paths by longest-prefix match,
// a simplified form of SELinux's file_contexts configuration. The simulated
// VFS consults it when creating files so that new resources carry labels
// consistent with their location (e.g. everything under /tmp is tmp_t).
type FileContexts struct {
	mu      sync.RWMutex
	entries []fcEntry // kept sorted by descending prefix length
	deflt   Label
}

type fcEntry struct {
	prefix string
	label  Label
}

// NewFileContexts returns a FileContexts whose fallback label is deflt.
func NewFileContexts(deflt Label) *FileContexts {
	return &FileContexts{deflt: deflt}
}

// Add maps every path at or under prefix to label. Longer prefixes win.
// (pflint reaches this through the name it shares with counter Add; file
// contexts are only edited at policy-load time.)
//
//pflint:allow-fn — load-time table construction; enters the Filter closure only by name aliasing with the sharded counters' Add.
func (fc *FileContexts) Add(prefix string, label Label) {
	fc.mu.Lock() //pflint:allow — policy-load path, never called during mediation
	defer fc.mu.Unlock()
	prefix = strings.TrimSuffix(prefix, "/")
	if prefix == "" {
		prefix = "/"
	}
	for i, e := range fc.entries {
		if e.prefix == prefix {
			fc.entries[i].label = label
			return
		}
	}
	fc.entries = append(fc.entries, fcEntry{prefix, label})
	sort.Slice(fc.entries, func(i, j int) bool {
		return len(fc.entries[i].prefix) > len(fc.entries[j].prefix)
	})
}

// LabelFor returns the label for path.
func (fc *FileContexts) LabelFor(path string) Label {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	for _, e := range fc.entries {
		if e.prefix == "/" || path == e.prefix || strings.HasPrefix(path, e.prefix+"/") {
			return e.label
		}
	}
	return fc.deflt
}

// Default returns the fallback label.
func (fc *FileContexts) Default() Label { return fc.deflt }
