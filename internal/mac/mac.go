// Package mac implements a mandatory access control (MAC) substrate modeled
// on SELinux type enforcement, as used by the Process Firewall paper
// (EuroSys 2013) for its resource and process labels.
//
// The package provides:
//
//   - Labels (SELinux "types" such as httpd_t or tmp_t) and a SID table that
//     interns labels as small integers for fast matching, mirroring the
//     kernel security-ID scheme the paper relies on for rule evaluation.
//   - An allow-rule policy: (subject type, object type, class) -> permissions.
//   - The SYSHIGH trusted-computing-base set of subject and object labels
//     (paper Section 5.2), used by rules such as "-s SYSHIGH".
//   - Adversary accessibility computation (paper Section 2.2, footnote 2):
//     a resource is adversary accessible for a victim if some adversary of
//     the victim has permissions to it under the policy. Write permission
//     implies integrity attacks, read permission secrecy attacks.
package mac

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pfirewall/internal/obs"
)

// Label is an SELinux-style type label, e.g. "httpd_t" or "shadow_t".
// By convention process (subject) labels and resource (object) labels share
// the same namespace, as in SELinux type enforcement.
type Label string

// SID is an interned security identifier for a Label. SIDs are dense small
// integers so rule matching can compare integers instead of strings, the
// same optimization pftables applies when it translates labels at rule
// install time (paper Section 5.2). SID 0 is reserved and invalid.
type SID uint32

// InvalidSID is the zero SID; it never names a label.
const InvalidSID SID = 0

// Class is the object class an operation targets, following SELinux's
// security classes.
type Class uint8

// Object classes used by the simulated kernel.
const (
	ClassFile Class = iota + 1
	ClassDir
	ClassLnkFile
	ClassSockFile
	ClassUnixStreamSocket
	ClassProcess
	ClassFifoFile
	classCount
)

// String returns the SELinux-style class name.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (c Class) String() string {
	switch c {
	case ClassFile:
		return "file"
	case ClassDir:
		return "dir"
	case ClassLnkFile:
		return "lnk_file"
	case ClassSockFile:
		return "sock_file"
	case ClassUnixStreamSocket:
		return "unix_stream_socket"
	case ClassProcess:
		return "process"
	case ClassFifoFile:
		return "fifo_file"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Perm is a permission bit vector within a class.
type Perm uint32

// Permissions. A single flat space is used across classes for simplicity;
// only the (class, perm) pairs the simulated kernel requests matter.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExecute
	PermAppend
	PermCreate
	PermUnlink
	PermRename
	PermSearch
	PermAddName
	PermRemoveName
	PermSetattr
	PermGetattr
	PermBind
	PermConnect
	PermSignal
	PermTransition
	PermEntrypoint
)

var permNames = []struct {
	p    Perm
	name string
}{
	{PermRead, "read"}, {PermWrite, "write"}, {PermExecute, "execute"},
	{PermAppend, "append"}, {PermCreate, "create"}, {PermUnlink, "unlink"},
	{PermRename, "rename"}, {PermSearch, "search"}, {PermAddName, "add_name"},
	{PermRemoveName, "remove_name"}, {PermSetattr, "setattr"},
	{PermGetattr, "getattr"}, {PermBind, "bind"}, {PermConnect, "connect"},
	{PermSignal, "signal"}, {PermTransition, "transition"},
	{PermEntrypoint, "entrypoint"},
}

// String renders the permission set as a brace list, e.g. "{ read write }".
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (p Perm) String() string {
	if p == 0 {
		return "{}"
	}
	var parts []string
	for _, pn := range permNames {
		if p&pn.p != 0 {
			parts = append(parts, pn.name)
		}
	}
	return "{ " + strings.Join(parts, " ") + " }"
}

// ParsePerm parses a single permission name.
func ParsePerm(name string) (Perm, error) {
	for _, pn := range permNames {
		if pn.name == name {
			return pn.p, nil
		}
	}
	return 0, fmt.Errorf("mac: unknown permission %q", name)
}

// sidSnap is one immutable SID-table state, published whole so readers
// never take a lock (denial logging renders labels on the mediation path;
// pflint guards that path against mutexes).
type sidSnap struct {
	byLabel map[Label]SID
	labels  []Label // index = SID; labels[0] is a placeholder
}

// SIDTable interns labels to SIDs. It is safe for concurrent use: reads go
// through an atomic snapshot, and only interning — a control-plane
// operation (policy load, rule install) — serializes on a mutex.
type SIDTable struct {
	mu   sync.Mutex // serializes interning; readers never take it
	snap atomic.Pointer[sidSnap]
}

// NewSIDTable returns an empty SID table.
func NewSIDTable() *SIDTable {
	t := &SIDTable{}
	t.snap.Store(&sidSnap{
		byLabel: make(map[Label]SID),
		labels:  []Label{""},
	})
	return t
}

// SID interns lbl, assigning a new SID on first use. The hit path is
// lock-free; a miss republishes a copy-on-write snapshot.
//
//pflint:allow-fn — copy-on-write table growth, once per never-seen label; steady-state lookups hit the published snapshot.
func (t *SIDTable) SID(lbl Label) SID {
	if s, ok := t.snap.Load().byLabel[lbl]; ok {
		return s
	}
	t.mu.Lock() //pflint:allow — interning only happens at policy-load and rule-install time
	defer t.mu.Unlock()
	cur := t.snap.Load()
	if s, ok := cur.byLabel[lbl]; ok {
		return s
	}
	n := &sidSnap{
		byLabel: make(map[Label]SID, len(cur.byLabel)+1),
		labels:  append(append(make([]Label, 0, len(cur.labels)+1), cur.labels...), lbl),
	}
	for k, v := range cur.byLabel {
		n.byLabel[k] = v
	}
	s := SID(len(cur.labels))
	n.byLabel[lbl] = s
	t.snap.Store(n)
	return s
}

// Lookup returns the SID for lbl without interning. The second result
// reports whether the label was known.
func (t *SIDTable) Lookup(lbl Label) (SID, bool) {
	s, ok := t.snap.Load().byLabel[lbl]
	return s, ok
}

// Label returns the label for s, or "" if s is unknown.
func (t *SIDTable) Label(s SID) Label {
	labels := t.snap.Load().labels
	if int(s) <= 0 || int(s) >= len(labels) {
		return ""
	}
	return labels[s]
}

// Labels returns a snapshot of every interned label in SID order. Callers
// that must distinguish labels known before some event (e.g. rule parsing,
// which interns whatever it sees) take the snapshot first.
func (t *SIDTable) Labels() []Label {
	return append([]Label(nil), t.snap.Load().labels[1:]...)
}

// Len reports the number of interned labels (excluding the invalid SID).
func (t *SIDTable) Len() int {
	return len(t.snap.Load().labels) - 1
}

// avKey is an access-vector key.
type avKey struct {
	sub, obj SID
	cls      Class
}

// Policy is a type-enforcement policy: a set of allow rules plus the
// SYSHIGH trusted set. The zero value is unusable; use NewPolicy.
//
// Policy also answers the adversary-accessibility questions the Process
// Firewall needs: given a victim subject, is a resource writable (integrity)
// or readable (secrecy) by any of the victim's adversaries?
type Policy struct {
	mu      sync.RWMutex
	sids    *SIDTable
	allow   map[avKey]Perm
	trusted map[SID]bool // SYSHIGH membership (subjects and objects)

	// subjects is the set of SIDs that have appeared as subjects of allow
	// rules; adversary computations quantify over these.
	subjects map[SID]bool

	// adv is the adversary-accessibility snapshot consulted on the PF hot
	// path. It is immutable once published: cache hits are wait-free loads
	// with no lock acquisition, misses memoize by copy-on-write swap, and
	// policy edits publish a fresh empty snapshot (RCU discipline, like the
	// PF engine's ruleset). advEpoch (written under mu, read lock-free)
	// detects a policy edit racing a miss-path computation so a stale
	// result is never memoized; it also doubles as a churn gauge for the
	// observability layer.
	adv      atomic.Pointer[advSnapshot]
	advEpoch atomic.Uint64

	// AdvCacheHits and AdvCacheMisses count adversary-accessibility
	// lookups served from the snapshot versus recomputed, sharded by
	// object SID (no pid is in scope here). Always on — two sharded
	// atomic adds next to a full policy walk are noise — and sampled by
	// the observability exporter at export time.
	AdvCacheHits   obs.Counter
	AdvCacheMisses obs.Counter
}

// advSnapshot memoizes adversary accessibility per object SID for TCB
// victims, the common case on the PF hot path. All maps are frozen at
// publication; trusted is shared across successive snapshots of one epoch.
type advSnapshot struct {
	epoch   uint64
	trusted map[SID]bool // SYSHIGH membership at snapshot time
	write   map[SID]bool // object SID -> adversary-writable
	read    map[SID]bool // object SID -> adversary-readable
}

// NewPolicy returns an empty policy that interns labels in sids.
func NewPolicy(sids *SIDTable) *Policy {
	p := &Policy{
		sids:     sids,
		allow:    make(map[avKey]Perm),
		trusted:  make(map[SID]bool),
		subjects: make(map[SID]bool),
	}
	p.adv.Store(&advSnapshot{
		trusted: map[SID]bool{}, write: map[SID]bool{}, read: map[SID]bool{},
	})
	return p
}

// SIDs returns the policy's SID table.
func (p *Policy) SIDs() *SIDTable { return p.sids }

// Allow adds an allow rule: subject may exercise perms on objects of class cls.
func (p *Policy) Allow(subject, object Label, cls Class, perms Perm) {
	sub, obj := p.sids.SID(subject), p.sids.SID(object)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.allow[avKey{sub, obj, cls}] |= perms
	p.subjects[sub] = true
	p.invalidateCachesLocked()
}

// AllowAllClasses adds allow rules for perms across every object class.
func (p *Policy) AllowAllClasses(subject, object Label, perms Perm) {
	for c := Class(1); c < classCount; c++ {
		p.Allow(subject, object, c, perms)
	}
}

// MarkTrusted places labels into SYSHIGH, the TCB set (paper Section 5.2).
func (p *Policy) MarkTrusted(labels ...Label) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range labels {
		p.trusted[p.sids.SID(l)] = true
	}
	p.invalidateCachesLocked()
}

// Trusted reports whether s is in SYSHIGH.
func (p *Policy) Trusted(s SID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.trusted[s]
}

// TrustedSet returns the SYSHIGH SIDs in ascending order.
func (p *Policy) TrustedSet() []SID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]SID, 0, len(p.trusted))
	for s := range p.trusted {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Authorized reports whether subject holds perms on object/cls.
// All requested permission bits must be granted.
func (p *Policy) Authorized(subject, object SID, cls Class, perms Perm) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.allow[avKey{subject, object, cls}]&perms == perms
}

// invalidateCachesLocked publishes a fresh, empty adversary snapshot and
// advances the epoch so in-flight miss computations against the old policy
// cannot memoize their (possibly stale) results; callers hold p.mu.
func (p *Policy) invalidateCachesLocked() {
	epoch := p.advEpoch.Add(1)
	t := make(map[SID]bool, len(p.trusted))
	for s := range p.trusted {
		t[s] = true
	}
	p.adv.Store(&advSnapshot{
		epoch: epoch, trusted: t,
		write: map[SID]bool{}, read: map[SID]bool{},
	})
}

// AdvEpoch returns the adversary-cache epoch: the number of policy edits
// that invalidated the snapshot. Lock-free; exported as a churn gauge.
func (p *Policy) AdvEpoch() uint64 { return p.advEpoch.Load() }

// memoizeAdv publishes snap extended with obj->res in the write or read
// map. The copy-on-write swap happens under p.mu; if the policy changed
// since the caller loaded snap (epoch mismatch), the result is dropped —
// the original shared-map design would have cached it into the freshly
// invalidated cache, serving stale answers after a policy edit.
//
//pflint:allow-fn — copy-on-write memoization, once per subject SID; hits read the published snapshot.
func (p *Policy) memoizeAdv(snap *advSnapshot, obj SID, res, write bool) {
	p.mu.Lock() //pflint:allow — adversary-cache miss path; hits are wait-free on the snapshot
	defer p.mu.Unlock()
	if p.advEpoch.Load() != snap.epoch {
		return
	}
	cur := p.adv.Load()
	n := &advSnapshot{epoch: cur.epoch, trusted: cur.trusted, write: cur.write, read: cur.read}
	src := cur.write
	if !write {
		src = cur.read
	}
	m := make(map[SID]bool, len(src)+1)
	for k, v := range src {
		m[k] = v
	}
	m[obj] = res
	if write {
		n.write = m
	} else {
		n.read = m
	}
	p.adv.Store(n)
}

// AdversariesOf returns the subject SIDs considered adversaries of a victim
// subject. Following the paper's integrity-wall model, adversaries of a
// SYSHIGH (TCB) victim are all non-SYSHIGH subjects; adversaries of an
// untrusted victim are all subjects with a different label.
//
//pflint:allow-fn — adversary-set construction feeding the memo above; same once-per-SID cold path.
func (p *Policy) AdversariesOf(victim SID) []SID {
	p.mu.RLock() //pflint:allow — only reached on adversary-cache misses (see AdversaryWritable)
	defer p.mu.RUnlock()
	var out []SID
	victimTrusted := p.trusted[victim]
	for s := range p.subjects {
		if s == victim {
			continue
		}
		if victimTrusted {
			if !p.trusted[s] {
				out = append(out, s)
			}
		} else {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// advWritePerms are the permissions whose grant to an adversary makes an
// object an integrity attack surface.
const advWritePerms = PermWrite | PermAppend | PermCreate | PermAddName | PermSetattr

// AdversaryWritable reports whether any adversary of victim can write,
// create in, or otherwise modify objects labeled obj (integrity attack
// surface; paper Section 2.2 footnote 2). For TCB victims — the common case
// on the PF hot path, and the case where the adversary set is
// victim-independent — the answer is memoized in the wait-free snapshot.
func (p *Policy) AdversaryWritable(victim, obj SID) bool {
	w, _ := p.AdversaryWritableHit(victim, obj)
	return w
}

// AdversaryWritableHit is AdversaryWritable additionally reporting whether
// the answer came from the wait-free snapshot (hit) or required the miss
// computation — provenance the tracing layer records per request.
func (p *Policy) AdversaryWritableHit(victim, obj SID) (writable, hit bool) {
	snap := p.adv.Load()
	if !snap.trusted[victim] {
		p.AdvCacheMisses.Add(int(obj), 1)
		return p.adversaryHasPerm(victim, obj, advWritePerms), false
	}
	if v, ok := snap.write[obj]; ok {
		p.AdvCacheHits.Add(int(obj), 1)
		return v, true
	}
	p.AdvCacheMisses.Add(int(obj), 1)
	res := p.adversaryHasPerm(victim, obj, advWritePerms)
	p.memoizeAdv(snap, obj, res, true)
	return res, false
}

// AdversaryReadable reports whether any adversary of victim can read objects
// labeled obj (secrecy attack surface). Memoized like AdversaryWritable.
func (p *Policy) AdversaryReadable(victim, obj SID) bool {
	r, _ := p.AdversaryReadableHit(victim, obj)
	return r
}

// AdversaryReadableHit is AdversaryReadable with cache-hit provenance.
func (p *Policy) AdversaryReadableHit(victim, obj SID) (readable, hit bool) {
	snap := p.adv.Load()
	if !snap.trusted[victim] {
		p.AdvCacheMisses.Add(int(obj), 1)
		return p.adversaryHasPerm(victim, obj, PermRead), false
	}
	if v, ok := snap.read[obj]; ok {
		p.AdvCacheHits.Add(int(obj), 1)
		return v, true
	}
	p.AdvCacheMisses.Add(int(obj), 1)
	res := p.adversaryHasPerm(victim, obj, PermRead)
	p.memoizeAdv(snap, obj, res, false)
	return res, false
}

// adversaryHasPerm reports whether some adversary of victim holds any of
// perms on obj in any class.
func (p *Policy) adversaryHasPerm(victim, obj SID, perms Perm) bool {
	for _, adv := range p.AdversariesOf(victim) {
		p.mu.RLock() //pflint:allow — only reached on adversary-cache misses (see AdversaryWritable)
		found := false
		for c := Class(1); c < classCount; c++ {
			if p.allow[avKey{adv, obj, c}]&perms != 0 {
				found = true
				break
			}
		}
		p.mu.RUnlock()
		if found {
			return true
		}
	}
	return false
}

// LowIntegrity reports whether objects labeled obj are modifiable by
// subjects outside SYSHIGH — the paper's definition of a low-integrity
// resource when generating rules ("any resource modifiable by processes
// running under the untrusted SELinux user label", Section 6.3.1).
func (p *Policy) LowIntegrity(obj SID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for s := range p.subjects {
		if p.trusted[s] {
			continue
		}
		for c := Class(1); c < classCount; c++ {
			if p.allow[avKey{s, obj, c}]&(PermWrite|PermAppend|PermCreate|PermAddName|PermSetattr) != 0 {
				return true
			}
		}
	}
	return false
}
