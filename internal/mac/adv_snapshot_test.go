package mac

import (
	"sync"
	"testing"
)

// snapshotPolicy builds a policy with one trusted victim and one untrusted
// adversary subject, returning (policy, victim SID, object SID).
func snapshotPolicy() (*Policy, SID, SID) {
	sids := NewSIDTable()
	p := NewPolicy(sids)
	p.MarkTrusted("sshd_t")
	p.Allow("sshd_t", "etc_t", ClassFile, PermRead)
	p.Allow("user_t", "tmp_t", ClassFile, PermRead|PermWrite)
	return p, sids.SID("sshd_t"), sids.SID("etc_t")
}

// TestAdvSnapshotInvalidatedByAllow checks that the memoized adversary
// answer is discarded when a later Allow changes it — the cache must never
// serve a pre-edit verdict after the edit completes.
func TestAdvSnapshotInvalidatedByAllow(t *testing.T) {
	p, victim, obj := snapshotPolicy()

	if p.AdversaryWritable(victim, obj) {
		t.Fatal("etc_t must not be adversary-writable initially")
	}
	// Memoized hit must agree.
	if p.AdversaryWritable(victim, obj) {
		t.Fatal("memoized answer diverged")
	}

	p.Allow("user_t", "etc_t", ClassFile, PermWrite)
	if !p.AdversaryWritable(victim, obj) {
		t.Fatal("stale snapshot: AdversaryWritable false after adversary was granted write")
	}

	if p.AdversaryReadable(victim, obj) {
		t.Fatal("etc_t must not be adversary-readable yet")
	}
	p.Allow("user_t", "etc_t", ClassFile, PermRead)
	if !p.AdversaryReadable(victim, obj) {
		t.Fatal("stale snapshot: AdversaryReadable false after adversary was granted read")
	}
}

// TestAdvSnapshotInvalidatedByMarkTrusted checks that trusting a former
// adversary updates the memoized answers (the adversary set of a TCB victim
// is the non-SYSHIGH subjects, so SYSHIGH membership edits invalidate too).
func TestAdvSnapshotInvalidatedByMarkTrusted(t *testing.T) {
	sids := NewSIDTable()
	p := NewPolicy(sids)
	p.MarkTrusted("sshd_t")
	p.Allow("sshd_t", "etc_t", ClassFile, PermRead)
	p.Allow("helper_t", "etc_t", ClassFile, PermWrite)
	victim, obj := sids.SID("sshd_t"), sids.SID("etc_t")

	if !p.AdversaryWritable(victim, obj) {
		t.Fatal("untrusted helper_t with write perm must make etc_t adversary-writable")
	}
	p.MarkTrusted("helper_t")
	if p.AdversaryWritable(victim, obj) {
		t.Fatal("stale snapshot: helper_t joined SYSHIGH but is still counted as adversary")
	}
}

// TestAdvSnapshotConcurrentQueriesAndEdits races wait-free readers against
// policy editors; under -race this validates the copy-on-write publication,
// and the final quiescent query must reflect the last edit.
func TestAdvSnapshotConcurrentQueriesAndEdits(t *testing.T) {
	p, victim, obj := snapshotPolicy()

	var wg sync.WaitGroup
	const readers = 4
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p.AdversaryWritable(victim, obj)
				p.AdversaryReadable(victim, obj)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Alternate rule edits that flip nothing material but force
			// epoch advances and snapshot republication.
			p.Allow("user_t", "tmp_t", ClassFile, PermRead)
			p.MarkTrusted("sshd_t")
		}
	}()
	wg.Wait()

	p.Allow("user_t", "etc_t", ClassFile, PermWrite)
	if !p.AdversaryWritable(victim, obj) {
		t.Fatal("post-race edit not visible: snapshot stale")
	}
}
