// Package ustack simulates process user memory and the stack unwinding the
// Process Firewall's entrypoint context module performs (paper Section 4.4).
//
// The paper's kernel reads call stacks out of untrusted user memory with
// copy_from_user, bounds every read, and caps frame counts so a malicious or
// corrupted process can at worst disable its own protection — never crash or
// hang the kernel. This package reproduces those properties:
//
//   - Memory is word-addressed and every read is bounds-checked
//     (the copy_from_user analogue).
//   - Binary programs maintain a conventional frame-pointer chain
//     [savedFP, returnPC]; UnwindBinary walks it with a frame cap and
//     aborts cleanly on invalid pointers or cycles.
//   - Interpreted programs (PHP, Python, Bash) keep language-specific frame
//     structures in user memory; per-language unwinders parse them, just as
//     the paper adapts each interpreter's backtrace code to run in-kernel.
//   - An AddressSpace maps binaries at randomized-looking bases so absolute
//     PCs must be rebased to (binary, offset) pairs, which is how rules
//     handle ASLR ("entrypoint program counters are specified relative to
//     program binary base", Section 5.2).
package ustack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors reported by unwinders. All of them mean "context unavailable":
// the Process Firewall aborts evaluation of the malformed context without
// failing the kernel (paper Section 4.4).
var (
	ErrBadAddress = errors.New("ustack: address outside user memory")
	ErrTooDeep    = errors.New("ustack: frame count exceeds limit")
	ErrCorrupt    = errors.New("ustack: malformed frame structure")
)

// MaxFrames caps unwinding depth, the paper's DoS defense against infinite
// or cyclic frame chains.
const MaxFrames = 64

// Memory is simulated word-addressed user memory. Address 0 is reserved as
// the NULL terminator for frame chains.
type Memory struct {
	words []uint64
	gen   uint64
}

// Gen returns the memory's mutation generation. It changes on every Write,
// so callers may cache state derived from memory contents (e.g. entrypoint
// unwinds) keyed on it; any store — including one that corrupts a frame
// chain — invalidates the cache.
func (m *Memory) Gen() uint64 { return m.gen }

// NewMemory allocates user memory of n words, reusing recycled address
// spaces of the same size when available (process exit returns them via
// Recycle), the way a kernel reuses page frames instead of demanding fresh
// zeroed memory from nowhere.
func NewMemory(n int) *Memory {
	if v := memPool.Get(); v != nil {
		m := v.(*Memory)
		if len(m.words) == n {
			clear(m.words)
			return m
		}
		// Wrong size: drop it and fall through.
	}
	return &Memory{words: make([]uint64, n)}
}

// memPool recycles Memory buffers across process lifetimes.
var memPool = sync.Pool{}

// Recycle returns the memory to the allocator pool. The caller must not
// touch the Memory afterwards.
func (m *Memory) Recycle() {
	memPool.Put(m)
}

// Size returns the number of addressable words.
func (m *Memory) Size() uint64 { return uint64(len(m.words)) }

// Read performs a bounds-checked load; the copy_from_user analogue.
//
//pflint:allow-fn — unwinder memory access on entrypoint-cache miss, once per program phase.
func (m *Memory) Read(addr uint64) (uint64, error) {
	if addr == 0 || addr >= uint64(len(m.words)) {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	return m.words[addr], nil
}

// Write performs a bounds-checked store. Processes own their memory, so
// writes to bad addresses are programming errors in the simulation and
// still return an error rather than panicking.
func (m *Memory) Write(addr, val uint64) error {
	if addr == 0 || addr >= uint64(len(m.words)) {
		return fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	m.words[addr] = val
	m.gen++
	return nil
}

// WriteString stores s length-prefixed at addr (one byte per word for
// simplicity) and returns the number of words consumed.
func (m *Memory) WriteString(addr uint64, s string) (uint64, error) {
	if err := m.Write(addr, uint64(len(s))); err != nil {
		return 0, err
	}
	for i := 0; i < len(s); i++ {
		if err := m.Write(addr+1+uint64(i), uint64(s[i])); err != nil {
			return 0, err
		}
	}
	return 1 + uint64(len(s)), nil
}

// maxStringLen bounds string reads from untrusted memory.
const maxStringLen = 4096

// ReadString loads a length-prefixed string written by WriteString,
// validating the length against memory bounds.
//
//pflint:allow-fn — unwinder memory access on entrypoint-cache miss, once per program phase.
func (m *Memory) ReadString(addr uint64) (string, error) {
	n, err := m.Read(addr)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	for i := uint64(0); i < n; i++ {
		w, err := m.Read(addr + 1 + i)
		if err != nil {
			return "", err
		}
		if w > 0xff {
			return "", fmt.Errorf("%w: non-byte word in string", ErrCorrupt)
		}
		buf[i] = byte(w)
	}
	return string(buf), nil
}

// Regs is the register state the kernel snapshots at syscall entry.
type Regs struct {
	PC uint64 // program counter of the instruction issuing the syscall
	FP uint64 // frame pointer (base of the current frame record)
}

// Stack manages a frame-pointer chain in user memory for a simulated binary
// program. Layout of one frame record at address fp: [savedFP, returnPC].
type Stack struct {
	Mem  *Memory
	Regs Regs
	base uint64 // lowest address of the stack region
	sp   uint64 // next free word (grows upward in this simulation)
	gen  uint64
}

// Gen returns the stack's mutation generation. It changes on every Call,
// Ret and SetPC — the register-only mutations Memory.Gen cannot see (Ret
// and SetPC restore Regs without touching memory).
func (s *Stack) Gen() uint64 { return s.gen }

// NewStack carves a stack out of mem starting at base.
func NewStack(mem *Memory, base uint64) *Stack {
	return &Stack{Mem: mem, base: base, sp: base}
}

// Call pushes a frame recording that execution reached callsitePC and then
// transferred to a callee; the callee's instructions will report PCs of
// their own. Mirrors a CALL instruction's effect on the frame chain.
func (s *Stack) Call(callsitePC uint64) error {
	fp := s.sp
	if err := s.Mem.Write(fp, s.Regs.FP); err != nil {
		return err
	}
	if err := s.Mem.Write(fp+1, callsitePC); err != nil {
		return err
	}
	s.sp += 2
	s.Regs.FP = fp
	s.gen++
	return nil
}

// Ret pops the top frame, restoring the caller's frame pointer and PC.
func (s *Stack) Ret() error {
	fp := s.Regs.FP
	savedFP, err := s.Mem.Read(fp)
	if err != nil {
		return err
	}
	retPC, err := s.Mem.Read(fp + 1)
	if err != nil {
		return err
	}
	s.Regs.FP = savedFP
	s.Regs.PC = retPC
	s.sp = fp
	s.gen++
	return nil
}

// SetPC records the PC of the instruction about to execute (e.g. the
// syscall instruction's call site).
func (s *Stack) SetPC(pc uint64) {
	if s.Regs.PC == pc {
		// Re-arming the same syscall site is not a state change; skipping
		// the bump keeps generation-keyed caches warm across loops that
		// set their call site every iteration.
		return
	}
	s.Regs.PC = pc
	s.gen++
}

// Depth returns the current number of live frames.
func (s *Stack) Depth() int { return int((s.sp - s.base) / 2) }

// UnwindBinary walks the frame chain starting from regs, returning PCs from
// innermost (regs.PC) outward. It stops cleanly at the NULL frame pointer.
// Corrupt chains produce an error; the caller treats the context as
// unavailable. max caps the walk (use MaxFrames).
//
//pflint:allow-fn — native unwind on entrypoint-cache miss, once per program phase.
func UnwindBinary(mem *Memory, regs Regs, max int) ([]uint64, error) {
	if max <= 0 {
		max = MaxFrames
	}
	pcs := make([]uint64, 1, 8)
	pcs[0] = regs.PC
	fp := regs.FP
	// Cycle detection uses a small on-stack window instead of a map: frame
	// chains are short (MaxFrames-capped), and the kernel hot path must
	// not allocate per unwind.
	var seen [MaxFrames]uint64
	n := 0
	for fp != 0 {
		if len(pcs) >= max {
			return nil, ErrTooDeep
		}
		for i := 0; i < n; i++ {
			if seen[i] == fp {
				return nil, fmt.Errorf("%w: frame-pointer cycle at %#x", ErrCorrupt, fp)
			}
		}
		if n < len(seen) {
			seen[n] = fp
			n++
		}
		savedFP, err := mem.Read(fp)
		if err != nil {
			return nil, err
		}
		retPC, err := mem.Read(fp + 1)
		if err != nil {
			return nil, err
		}
		pcs = append(pcs, retPC)
		fp = savedFP
	}
	return pcs, nil
}

// Mapping records a binary or library mapped into an address space.
type Mapping struct {
	Base uint64
	Size uint64
	Path string // binary providing the code, e.g. /lib/ld-2.15.so
}

// AddressSpace tracks the executable mappings of one process, used to rebase
// absolute PCs into (binary, offset) entrypoints.
type AddressSpace struct {
	mappings []Mapping
	next     uint64
	gen      uint64
}

// mapGen issues mapping generations. It is global and strictly monotonic so a
// generation observed on one AddressSpace can never reappear on another: an
// execve replaces a process's address space while the process (and any caches
// keyed on the generation) survives, so a per-space counter restarting at
// zero could alias a stale cache entry.
var mapGen atomic.Uint64

// Gen returns the space's mapping generation. It changes whenever the set of
// mappings changes, so callers may cache derived state keyed on it.
func (a *AddressSpace) Gen() uint64 { return a.gen }

// mapAlign spaces mappings so distinct binaries never overlap; the
// pseudo-random-looking bases stand in for ASLR. It is sized so real-world
// code offsets (the paper's largest is PHP's 0x27ad2c) fit in one mapping.
const mapAlign = 0x1000000

// NewAddressSpace returns an empty address space. Bases are assigned
// deterministically but differ across load order, so tests exercise the
// rebasing logic the way ASLR would.
func NewAddressSpace(seed uint64) *AddressSpace {
	return &AddressSpace{next: (seed%7 + 1) * mapAlign, gen: mapGen.Add(1)}
}

// Map loads path at a fresh base and returns the Mapping.
func (a *AddressSpace) Map(path string, size uint64) Mapping {
	if size == 0 || size > mapAlign/2 {
		size = mapAlign / 2
	}
	m := Mapping{Base: a.next, Size: size, Path: path}
	a.mappings = append(a.mappings, m)
	a.next += mapAlign
	a.gen = mapGen.Add(1)
	return m
}

// Find returns the mapping containing pc.
func (a *AddressSpace) Find(pc uint64) (Mapping, bool) {
	for _, m := range a.mappings {
		if pc >= m.Base && pc < m.Base+m.Size {
			return m, true
		}
	}
	return Mapping{}, false
}

// FindByPath returns the mapping of a binary by its path.
func (a *AddressSpace) FindByPath(path string) (Mapping, bool) {
	for _, m := range a.mappings {
		if m.Path == path {
			return m, true
		}
	}
	return Mapping{}, false
}

// Rebase converts an absolute PC into a (binary, offset) pair; ok is false
// for PCs outside any mapping (e.g. forged stack contents).
func (a *AddressSpace) Rebase(pc uint64) (path string, off uint64, ok bool) {
	m, found := a.Find(pc)
	if !found {
		return "", 0, false
	}
	return m.Path, pc - m.Base, true
}

// Mappings returns a copy of the mapping list.
func (a *AddressSpace) Mappings() []Mapping {
	out := make([]Mapping, len(a.mappings))
	copy(out, a.mappings)
	return out
}

// ForEach visits every mapping without copying; stop by returning false.
func (a *AddressSpace) ForEach(f func(Mapping) bool) {
	for _, m := range a.mappings {
		if !f(m) {
			return
		}
	}
}
