package ustack

import "fmt"

// Lang identifies the runtime whose frames an unwinder must parse. The
// paper adapts the backtrace code of each supported interpreter (PHP,
// Python, Bash — Section 4.4) to run inside the kernel; we mirror that with
// one unwinder per deliberately-different in-memory frame layout.
type Lang uint8

// Supported interpreter runtimes.
const (
	LangNative Lang = iota
	LangPHP
	LangPython
	LangBash
)

// String names the language.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (l Lang) String() string {
	switch l {
	case LangNative:
		return "native"
	case LangPHP:
		return "php"
	case LangPython:
		return "python"
	case LangBash:
		return "bash"
	default:
		return fmt.Sprintf("lang(%d)", uint8(l))
	}
}

// InterpFrame is one interpreter-level stack frame: which script, and where.
type InterpFrame struct {
	Script string
	Line   int
}

// InterpState is the writer side: interpreters use it to maintain their
// frame structures in user memory as scripts call functions/include files.
// The layouts intentionally differ per language:
//
//	PHP:    singly linked list, head pointer at headAddr.
//	        frame: [scriptStrAddr, line, nextFrameAddr]
//	Python: contiguous array, header at headAddr: [count, (scriptStrAddr, line)...]
//	Bash:   singly linked list with fields swapped: [nextFrameAddr, line, scriptStrAddr]
type InterpState struct {
	Lang     Lang
	Mem      *Memory
	HeadAddr uint64 // where the kernel finds the frame structure

	alloc  uint64 // bump allocator within the interpreter arena
	limit  uint64
	frames []uint64 // frame record addrs (for pop)
	strs   map[string]uint64
}

// NewInterpState reserves [arena, arena+size) of mem for interpreter frames.
// The head slot is the first word of the arena.
func NewInterpState(lang Lang, mem *Memory, arena, size uint64) *InterpState {
	st := &InterpState{
		Lang:     lang,
		Mem:      mem,
		HeadAddr: arena,
		alloc:    arena + 1,
		limit:    arena + size,
		strs:     make(map[string]uint64),
	}
	if lang == LangPython {
		// Array layout: the head slot holds the frame count; a fixed record
		// area of MaxFrames entries follows, then the string arena.
		st.alloc = arena + 1 + MaxFrames*2
	}
	mem.Write(arena, 0) // zero count / NULL head pointer
	return st
}

// internString writes script once and reuses the address thereafter.
func (st *InterpState) internString(s string) (uint64, error) {
	if addr, ok := st.strs[s]; ok {
		return addr, nil
	}
	addr := st.alloc
	n, err := st.Mem.WriteString(addr, s)
	if err != nil {
		return 0, err
	}
	st.alloc += n
	if st.alloc >= st.limit {
		return 0, fmt.Errorf("ustack: interpreter arena exhausted")
	}
	st.strs[s] = addr
	return addr, nil
}

// Push records entry into script at line.
func (st *InterpState) Push(script string, line int) error {
	sAddr, err := st.internString(script)
	if err != nil {
		return err
	}
	switch st.Lang {
	case LangPython:
		count, err := st.Mem.Read(st.HeadAddr)
		if err != nil {
			return err
		}
		if count >= MaxFrames {
			return fmt.Errorf("ustack: python frame array full")
		}
		rec := st.HeadAddr + 1 + count*2
		if err := st.Mem.Write(rec, sAddr); err != nil {
			return err
		}
		if err := st.Mem.Write(rec+1, uint64(line)); err != nil {
			return err
		}
		return st.Mem.Write(st.HeadAddr, count+1)
	case LangPHP, LangBash:
		rec := st.alloc
		st.alloc += 3
		if st.alloc >= st.limit {
			return fmt.Errorf("ustack: interpreter arena exhausted")
		}
		head, err := st.Mem.Read(st.HeadAddr)
		if err != nil && head != 0 {
			return err
		}
		if st.Lang == LangPHP {
			st.Mem.Write(rec, sAddr)
			st.Mem.Write(rec+1, uint64(line))
			st.Mem.Write(rec+2, head)
		} else {
			st.Mem.Write(rec, head)
			st.Mem.Write(rec+1, uint64(line))
			st.Mem.Write(rec+2, sAddr)
		}
		st.frames = append(st.frames, rec)
		return st.Mem.Write(st.HeadAddr, rec)
	default:
		return fmt.Errorf("ustack: language %v has no interpreter frames", st.Lang)
	}
}

// Pop unwinds the most recent frame.
func (st *InterpState) Pop() error {
	switch st.Lang {
	case LangPython:
		count, err := st.Mem.Read(st.HeadAddr)
		if err != nil {
			return err
		}
		if count == 0 {
			return fmt.Errorf("ustack: pop on empty python stack")
		}
		return st.Mem.Write(st.HeadAddr, count-1)
	case LangPHP, LangBash:
		if len(st.frames) == 0 {
			return fmt.Errorf("ustack: pop on empty %v stack", st.Lang)
		}
		rec := st.frames[len(st.frames)-1]
		st.frames = st.frames[:len(st.frames)-1]
		var next uint64
		var err error
		if st.Lang == LangPHP {
			next, err = st.Mem.Read(rec + 2)
		} else {
			next, err = st.Mem.Read(rec)
		}
		if err != nil {
			return err
		}
		return st.Mem.Write(st.HeadAddr, next)
	default:
		return fmt.Errorf("ustack: language %v has no interpreter frames", st.Lang)
	}
}

// UnwindInterp parses the interpreter frame structure for lang at headAddr,
// returning frames innermost-first. It applies the same sanitization rules
// as UnwindBinary: bounds-checked reads, cycle detection, and a MaxFrames
// cap. Errors mean the context is unavailable, never a kernel fault.
//
//pflint:allow-fn — interpreter unwind on entrypoint-cache miss, once per program phase.
func UnwindInterp(lang Lang, mem *Memory, headAddr uint64) ([]InterpFrame, error) {
	switch lang {
	case LangPython:
		return unwindPython(mem, headAddr)
	case LangPHP:
		return unwindLinked(mem, headAddr, 0, 1, 2) // script, line, next
	case LangBash:
		return unwindLinked(mem, headAddr, 2, 1, 0) // next, line, script order swapped
	default:
		return nil, fmt.Errorf("ustack: no unwinder for %v", lang)
	}
}

//pflint:allow-fn — interpreter unwind on entrypoint-cache miss, once per program phase.
func unwindPython(mem *Memory, headAddr uint64) ([]InterpFrame, error) {
	count, err := mem.Read(headAddr)
	if err != nil {
		return nil, err
	}
	if count > MaxFrames {
		return nil, ErrTooDeep
	}
	frames := make([]InterpFrame, 0, count)
	// Innermost-first: the array grows outward, so iterate backwards.
	for i := int64(count) - 1; i >= 0; i-- {
		rec := headAddr + 1 + uint64(i)*2
		sAddr, err := mem.Read(rec)
		if err != nil {
			return nil, err
		}
		line, err := mem.Read(rec + 1)
		if err != nil {
			return nil, err
		}
		script, err := mem.ReadString(sAddr)
		if err != nil {
			return nil, err
		}
		frames = append(frames, InterpFrame{Script: script, Line: int(line)})
	}
	return frames, nil
}

// unwindLinked walks a linked frame list whose record fields sit at the
// given offsets relative to the record address.
//
//pflint:allow-fn — interpreter unwind on entrypoint-cache miss, once per program phase.
func unwindLinked(mem *Memory, headAddr uint64, scriptOff, lineOff, nextOff uint64) ([]InterpFrame, error) {
	head, err := mem.Read(headAddr)
	if err != nil {
		return nil, err
	}
	var frames []InterpFrame
	seen := make(map[uint64]bool)
	for head != 0 {
		if len(frames) >= MaxFrames {
			return nil, ErrTooDeep
		}
		if seen[head] {
			return nil, fmt.Errorf("%w: interpreter frame cycle at %#x", ErrCorrupt, head)
		}
		seen[head] = true
		sAddr, err := mem.Read(head + scriptOff)
		if err != nil {
			return nil, err
		}
		line, err := mem.Read(head + lineOff)
		if err != nil {
			return nil, err
		}
		script, err := mem.ReadString(sAddr)
		if err != nil {
			return nil, err
		}
		frames = append(frames, InterpFrame{Script: script, Line: int(line)})
		head, err = mem.Read(head + nextOff)
		if err != nil {
			return nil, err
		}
	}
	return frames, nil
}
