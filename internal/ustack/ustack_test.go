package ustack

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(16)
	if _, err := m.Read(0); !errors.Is(err, ErrBadAddress) {
		t.Error("read of NULL should fail")
	}
	if _, err := m.Read(16); !errors.Is(err, ErrBadAddress) {
		t.Error("read past end should fail")
	}
	if err := m.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(1)
	if err != nil || v != 42 {
		t.Errorf("Read(1) = %d, %v", v, err)
	}
	if err := m.Write(99, 1); !errors.Is(err, ErrBadAddress) {
		t.Error("write past end should fail")
	}
}

func TestMemoryStrings(t *testing.T) {
	m := NewMemory(128)
	n, err := m.WriteString(10, "hello.php")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("consumed %d words, want 10", n)
	}
	s, err := m.ReadString(10)
	if err != nil || s != "hello.php" {
		t.Errorf("ReadString = %q, %v", s, err)
	}
}

func TestReadStringCorrupt(t *testing.T) {
	m := NewMemory(64)
	m.Write(1, maxStringLen+1) // absurd length
	if _, err := m.ReadString(1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length: %v, want ErrCorrupt", err)
	}
	m.Write(5, 2)
	m.Write(6, 'a')
	m.Write(7, 0x1ff) // non-byte word
	if _, err := m.ReadString(5); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-byte word: %v, want ErrCorrupt", err)
	}
	m.Write(60, 10) // string runs past end of memory
	if _, err := m.ReadString(60); !errors.Is(err, ErrBadAddress) {
		t.Errorf("string past end: %v, want ErrBadAddress", err)
	}
}

func TestStackCallRetUnwind(t *testing.T) {
	m := NewMemory(256)
	s := NewStack(m, 100)

	// main (pc 0x10) -> helper (pc 0x20) -> syscall at 0x30
	if err := s.Call(0x10); err != nil {
		t.Fatal(err)
	}
	if err := s.Call(0x20); err != nil {
		t.Fatal(err)
	}
	s.SetPC(0x30)

	pcs, err := UnwindBinary(m, s.Regs, MaxFrames)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0x30, 0x20, 0x10}
	if len(pcs) != len(want) {
		t.Fatalf("pcs = %#x, want %#x", pcs, want)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Errorf("pcs[%d] = %#x, want %#x", i, pcs[i], want[i])
		}
	}

	if s.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth())
	}
	if err := s.Ret(); err != nil {
		t.Fatal(err)
	}
	if s.Regs.PC != 0x20 || s.Depth() != 1 {
		t.Errorf("after ret: PC=%#x depth=%d", s.Regs.PC, s.Depth())
	}
}

func TestUnwindCorruptFramePointer(t *testing.T) {
	m := NewMemory(64)
	// Frame at 10 points to an out-of-bounds saved FP.
	m.Write(10, 9999)
	m.Write(11, 0x20)
	_, err := UnwindBinary(m, Regs{PC: 0x30, FP: 10}, MaxFrames)
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

func TestUnwindCycle(t *testing.T) {
	m := NewMemory(64)
	m.Write(10, 20)
	m.Write(11, 0x1)
	m.Write(20, 10) // cycle back
	m.Write(21, 0x2)
	_, err := UnwindBinary(m, Regs{PC: 0x30, FP: 10}, MaxFrames)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestUnwindTooDeep(t *testing.T) {
	m := NewMemory(4 * MaxFrames * 2)
	// Chain of MaxFrames+5 frames.
	var prev uint64
	var fp uint64
	for i := 0; i < MaxFrames+5; i++ {
		fp = uint64(2 + i*2)
		m.Write(fp, prev)
		m.Write(fp+1, uint64(0x100+i))
		prev = fp
	}
	_, err := UnwindBinary(m, Regs{PC: 0x30, FP: fp}, MaxFrames)
	if !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func TestAddressSpaceRebase(t *testing.T) {
	as := NewAddressSpace(3)
	ld := as.Map("/lib/ld-2.15.so", 0)
	libc := as.Map("/lib/libc.so", 0)
	if ld.Base == libc.Base {
		t.Fatal("mappings overlap")
	}
	path, off, ok := as.Rebase(ld.Base + 0x596b)
	if !ok || path != "/lib/ld-2.15.so" || off != 0x596b {
		t.Errorf("Rebase = %q, %#x, %v", path, off, ok)
	}
	if _, _, ok := as.Rebase(0xdeadbeef0); ok {
		t.Error("Rebase of unmapped PC should fail")
	}
	if m, ok := as.FindByPath("/lib/libc.so"); !ok || m.Base != libc.Base {
		t.Error("FindByPath failed")
	}
}

func TestAddressSpaceASLRSeeds(t *testing.T) {
	a := NewAddressSpace(1)
	b := NewAddressSpace(5)
	ma := a.Map("/bin/prog", 0)
	mb := b.Map("/bin/prog", 0)
	if ma.Base == mb.Base {
		t.Error("different seeds should give different bases (ASLR stand-in)")
	}
	// Offsets must be stable regardless of base.
	pa, oa, _ := a.Rebase(ma.Base + 0x42)
	pb, ob, _ := b.Rebase(mb.Base + 0x42)
	if pa != pb || oa != ob {
		t.Error("rebased entrypoints must be base-independent")
	}
}

func interpRoundTrip(t *testing.T, lang Lang) {
	t.Helper()
	m := NewMemory(4096)
	st := NewInterpState(lang, m, 100, 2000)
	if err := st.Push("index.php", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Push("lib/gcalendar.php", 57); err != nil {
		t.Fatal(err)
	}
	frames, err := UnwindInterp(lang, m, st.HeadAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("%v: frames = %+v", lang, frames)
	}
	if frames[0].Script != "lib/gcalendar.php" || frames[0].Line != 57 {
		t.Errorf("%v: innermost = %+v", lang, frames[0])
	}
	if frames[1].Script != "index.php" || frames[1].Line != 3 {
		t.Errorf("%v: outermost = %+v", lang, frames[1])
	}
	if err := st.Pop(); err != nil {
		t.Fatal(err)
	}
	frames, err = UnwindInterp(lang, m, st.HeadAddr)
	if err != nil || len(frames) != 1 {
		t.Fatalf("%v after pop: %+v, %v", lang, frames, err)
	}
}

func TestInterpUnwindPHP(t *testing.T)    { interpRoundTrip(t, LangPHP) }
func TestInterpUnwindPython(t *testing.T) { interpRoundTrip(t, LangPython) }
func TestInterpUnwindBash(t *testing.T)   { interpRoundTrip(t, LangBash) }

func TestInterpUnwindEmpty(t *testing.T) {
	for _, lang := range []Lang{LangPHP, LangPython, LangBash} {
		m := NewMemory(512)
		st := NewInterpState(lang, m, 50, 400)
		frames, err := UnwindInterp(lang, m, st.HeadAddr)
		if err != nil || len(frames) != 0 {
			t.Errorf("%v: empty unwind = %+v, %v", lang, frames, err)
		}
	}
}

func TestInterpUnwindMaliciousCycle(t *testing.T) {
	// A malicious PHP process links its frame list into a cycle; the
	// unwinder must abort with ErrCorrupt, not hang (paper Section 4.4).
	m := NewMemory(512)
	st := NewInterpState(LangPHP, m, 50, 400)
	st.Push("a.php", 1)
	st.Push("b.php", 2)
	head, _ := m.Read(st.HeadAddr)
	// Point the second frame's next pointer back at the head frame.
	m.Write(head+2, head)
	_, err := UnwindInterp(LangPHP, m, st.HeadAddr)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestInterpUnwindMaliciousPointer(t *testing.T) {
	m := NewMemory(512)
	st := NewInterpState(LangBash, m, 50, 400)
	st.Push("script.sh", 10)
	head, _ := m.Read(st.HeadAddr)
	m.Write(head+2, 50000) // script pointer out of bounds
	_, err := UnwindInterp(LangBash, m, st.HeadAddr)
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

func TestInterpPythonHugeCount(t *testing.T) {
	m := NewMemory(512)
	st := NewInterpState(LangPython, m, 50, 400)
	m.Write(st.HeadAddr, uint64(MaxFrames+1))
	_, err := UnwindInterp(LangPython, m, st.HeadAddr)
	if !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func TestInterpPopEmpty(t *testing.T) {
	for _, lang := range []Lang{LangPHP, LangPython, LangBash} {
		m := NewMemory(256)
		st := NewInterpState(lang, m, 20, 200)
		if err := st.Pop(); err == nil {
			t.Errorf("%v: pop on empty stack should fail", lang)
		}
	}
}

func TestLangString(t *testing.T) {
	if LangPHP.String() != "php" || LangNative.String() != "native" {
		t.Error("Lang.String mismatch")
	}
}

func TestStackUnwindProperty(t *testing.T) {
	// Property: after n calls, unwinding yields n+1 PCs in reverse call order.
	f := func(depth uint8) bool {
		n := int(depth%20) + 1
		m := NewMemory(1024)
		s := NewStack(m, 200)
		for i := 0; i < n; i++ {
			if err := s.Call(uint64(0x1000 + i)); err != nil {
				return false
			}
		}
		s.SetPC(0xffff)
		pcs, err := UnwindBinary(m, s.Regs, MaxFrames)
		if err != nil || len(pcs) != n+1 || pcs[0] != 0xffff {
			return false
		}
		for i := 1; i <= n; i++ {
			if pcs[i] != uint64(0x1000+n-i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpRoundTripProperty(t *testing.T) {
	// Property: push k frames then unwind yields those frames innermost-first.
	f := func(k uint8, lineSeed uint16) bool {
		n := int(k%10) + 1
		for _, lang := range []Lang{LangPHP, LangPython, LangBash} {
			m := NewMemory(8192)
			st := NewInterpState(lang, m, 100, 7000)
			for i := 0; i < n; i++ {
				if st.Push("s.php", int(lineSeed)+i) != nil {
					return false
				}
			}
			frames, err := UnwindInterp(lang, m, st.HeadAddr)
			if err != nil || len(frames) != n {
				return false
			}
			for i, fr := range frames {
				if fr.Line != int(lineSeed)+n-1-i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
